#include "sched/gradient.h"

#include <algorithm>

namespace splice::sched {

namespace {
/// Proximity of unreachable/no-sink regions; acts like "infinity".
constexpr std::uint32_t kFarAway = UINT32_MAX / 2;
}  // namespace

void GradientScheduler::attach(const SchedulerEnv& env) {
  Scheduler::attach(env);
  seed_streams(origin_rng_, rng_, 0x96AD);
  proximity_.assign(proc_count(), 0);
  last_refresh_ = sim::SimTime(-1);
}

void GradientScheduler::refresh_now() {
  const net::ProcId n = proc_count();
  proximity_.assign(n, kFarAway);
  // Sinks: alive processors at or below the idle threshold.
  for (net::ProcId p = 0; p < n; ++p) {
    if (alive(p) && load_of(p) <= idle_threshold_) proximity_[p] = 0;
  }
  // Bellman-Ford style relaxation over the neighbour graph. The diameter
  // bounds the iteration count.
  const std::uint32_t rounds = env_.topology->diameter() + 1;
  for (std::uint32_t round = 0; round < rounds; ++round) {
    bool changed = false;
    for (net::ProcId p = 0; p < n; ++p) {
      if (!alive(p)) continue;
      std::uint32_t best = proximity_[p];
      for (net::ProcId q : env_.topology->neighbors(p)) {
        if (!alive(q)) continue;
        best = std::min(best, proximity_[q] == kFarAway ? kFarAway
                                                        : proximity_[q] + 1);
      }
      if (best < proximity_[p]) {
        proximity_[p] = best;
        changed = true;
      }
    }
    if (!changed) break;
  }
}

std::uint64_t GradientScheduler::on_tick(sim::SimTime now) {
  if (last_refresh_.ticks() >= 0 &&
      (now - last_refresh_).ticks() < refresh_ticks_) {
    return 0;
  }
  last_refresh_ = now;
  refresh_now();
  // Traffic accounting: one pressure exchange per directed edge.
  std::uint64_t messages = 0;
  for (net::ProcId p = 0; p < proc_count(); ++p) {
    if (alive(p)) messages += env_.topology->neighbors(p).size();
  }
  return messages;
}

net::ProcId GradientScheduler::choose(net::ProcId origin,
                                      const runtime::TaskPacket& packet) {
  const net::ProcId n = proc_count();
  util::Xoshiro256& rng = stream(origin_rng_, rng_, origin);
  // Lazy first refresh mutates the shared field, so it must not happen on a
  // sharded worker thread; the engine primes the field with on_tick(0)
  // before the workers start, making this a coordinator-only path.
  if (proximity_.size() != n || last_refresh_.ticks() < 0) refresh_now();

  if (ok(origin, origin, packet)) {
    // A lightly loaded node keeps its own spawn: no suction beats local.
    if (load_of(origin) <= idle_threshold_) return origin;
    // Push one hop down the gradient. Ties break uniformly at random so
    // parallel branches spread.
    net::ProcId best = origin;
    std::uint32_t best_prox =
        proximity_[origin] == 0 ? kFarAway : proximity_[origin];
    std::uint32_t ties = 1;
    for (net::ProcId q : env_.topology->neighbors(origin)) {
      if (!ok(origin, q, packet)) continue;
      if (proximity_[q] < best_prox) {
        best_prox = proximity_[q];
        best = q;
        ties = 1;
      } else if (proximity_[q] == best_prox && best != origin) {
        ++ties;
        if (rng.next_below(ties) == 0) best = q;
      }
    }
    return best;
  }

  // Origin ineligible (zone-constrained replica or dead host): route to
  // the least-loaded eligible node anywhere, then any alive node.
  net::ProcId best = net::kNoProc;
  std::uint32_t best_load = UINT32_MAX;
  for (net::ProcId p = 0; p < n; ++p) {
    if (!ok(origin, p, packet)) continue;
    const std::uint32_t l = load_of(p);
    if (l < best_load) {
      best_load = l;
      best = p;
    }
  }
  if (best != net::kNoProc) return best;
  for (net::ProcId p = 0; p < n; ++p) {
    if (alive(origin, p)) return p;
  }
  return net::kNoProc;
}

}  // namespace splice::sched
