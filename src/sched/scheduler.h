// Dynamic task allocation (§3.3).
//
// "The ability to recover by simply reissuing checkpointed tasks depends on
//  the availability of a dynamic allocation strategy, such as the gradient
//  model approach [10]. ... Dynamic allocation does not distinguish between
//  tasks generated for recovery and original tasks."
//
// The Scheduler decides, at DEMAND_IT time, which processor receives a task
// packet. All schedulers must avoid dead processors — that single property
// is what makes reissued recovery tasks need no linkage surgery.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/config.h"
#include "lang/program.h"
#include "net/topology.h"
#include "runtime/task_packet.h"
#include "util/small_vec.h"
#include "sim/time.h"
#include "util/rng.h"

namespace splice::sched {

/// Environment handed to schedulers at attach time. Callbacks pull live
/// system state (liveness, queue lengths) so schedulers stay decoupled from
/// the runtime.
struct SchedulerEnv {
  const net::Topology* topology = nullptr;
  const lang::Program* program = nullptr;
  std::function<bool(net::ProcId)> alive;
  /// Does `origin` locally believe `p` has failed? Placement must respect
  /// the origin's suspicion, not just global liveness: during a network
  /// partition the far side is alive but unreachable, and spawning toward
  /// it creates checkpoint records against a destination whose reissue
  /// obligation has already been discharged — an unrecoverable slot.
  std::function<bool(net::ProcId, net::ProcId)> suspected;
  std::function<std::uint32_t(net::ProcId)> queue_length;
  /// Placement constraint beyond liveness (replication zones). Optional;
  /// schedulers treat it as a soft preference: when no eligible processor
  /// exists they fall back to any alive one rather than losing the task.
  std::function<bool(net::ProcId, const runtime::TaskPacket&)> eligible;
  std::uint64_t seed = 1;
  /// True under the sharded (PDES) engine: choose() is then called
  /// concurrently from worker threads, one per origin's shard. Stateful
  /// schedulers switch to per-origin rng/cursor streams so (a) no mutable
  /// state is shared across threads and (b) each origin's decision sequence
  /// depends only on its own spawn history — which the determinism contract
  /// makes identical across shard counts. Classic runs keep the historical
  /// single-stream behaviour bit-for-bit.
  bool sharded = false;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  virtual void attach(const SchedulerEnv& env) { env_ = env; }

  /// Choose the destination processor for `packet` spawned from `origin`.
  /// Must return an alive processor; returns kNoProc only when none exist.
  [[nodiscard]] virtual net::ProcId choose(net::ProcId origin,
                                           const runtime::TaskPacket& packet) = 0;

  /// Destination list type: inline for the common replication factors, so
  /// a spawn's placement decision allocates nothing.
  using DestVec = util::SmallVec<net::ProcId, 2>;

  /// Choose `count` destinations for replicated spawns; distinct processors
  /// when possible (§5.3: "each copy is executed by a different processor").
  [[nodiscard]] virtual DestVec choose_replicas(
      net::ProcId origin, const runtime::TaskPacket& packet,
      std::uint32_t count);

  /// Periodic hook (gradient refresh). Returns the number of load-exchange
  /// messages this refresh cost, so the runtime can account the traffic.
  virtual std::uint64_t on_tick(sim::SimTime /*now*/) { return 0; }

  [[nodiscard]] virtual core::SchedulerKind kind() const = 0;

 protected:
  /// Global liveness only (gradient field refresh — an aggregate view).
  [[nodiscard]] bool alive(net::ProcId p) const {
    return env_.alive && env_.alive(p);
  }
  /// Liveness as seen from `origin`: globally alive AND not locally
  /// suspected by the spawning processor. Placement decisions use this
  /// form; `origin` never suspects itself, so a live origin always has at
  /// least one admissible destination.
  [[nodiscard]] bool alive(net::ProcId origin, net::ProcId p) const {
    if (!alive(p)) return false;
    return !env_.suspected || !env_.suspected(origin, p);
  }
  /// Origin-view liveness + zone eligibility (soft; see SchedulerEnv).
  [[nodiscard]] bool ok(net::ProcId origin, net::ProcId p,
                        const runtime::TaskPacket& packet) const {
    if (!alive(origin, p)) return false;
    return !env_.eligible || env_.eligible(p, packet);
  }
  [[nodiscard]] std::uint32_t load_of(net::ProcId p) const {
    return env_.queue_length ? env_.queue_length(p) : 0;
  }
  [[nodiscard]] net::ProcId proc_count() const {
    return env_.topology ? env_.topology->size() : 0;
  }
  /// Seed the per-origin generators for sharded mode (one stream per
  /// processor, re-salted with the origin id) or the single classic stream.
  void seed_streams(std::vector<util::Xoshiro256>& per_origin,
                    util::Xoshiro256& classic, std::uint64_t salt) const {
    classic = util::Xoshiro256(util::hash_combine(env_.seed, salt));
    per_origin.clear();
    if (!env_.sharded) return;
    per_origin.reserve(proc_count());
    for (net::ProcId p = 0; p < proc_count(); ++p) {
      per_origin.emplace_back(
          util::hash_combine(util::hash_combine(env_.seed, salt), p));
    }
  }
  [[nodiscard]] util::Xoshiro256& stream(
      std::vector<util::Xoshiro256>& per_origin, util::Xoshiro256& classic,
      net::ProcId origin) const {
    if (origin < per_origin.size()) return per_origin[origin];
    return classic;
  }

  SchedulerEnv env_;
};

/// Uniformly random over alive processors.
class RandomScheduler final : public Scheduler {
 public:
  void attach(const SchedulerEnv& env) override;
  [[nodiscard]] net::ProcId choose(net::ProcId origin,
                                   const runtime::TaskPacket& packet) override;
  [[nodiscard]] core::SchedulerKind kind() const override {
    return core::SchedulerKind::kRandom;
  }

 private:
  util::Xoshiro256 rng_{1};
  std::vector<util::Xoshiro256> origin_rng_;  // sharded mode only
};

/// Cyclic over alive processors.
class RoundRobinScheduler final : public Scheduler {
 public:
  void attach(const SchedulerEnv& env) override;
  [[nodiscard]] net::ProcId choose(net::ProcId origin,
                                   const runtime::TaskPacket& packet) override;
  [[nodiscard]] core::SchedulerKind kind() const override {
    return core::SchedulerKind::kRoundRobin;
  }

 private:
  net::ProcId cursor_ = 0;
  std::vector<net::ProcId> origin_cursor_;  // sharded mode only
};

/// Keep tasks local until the queue passes a threshold, then push to the
/// least-loaded alive neighbour (random fallback).
class LocalFirstScheduler final : public Scheduler {
 public:
  explicit LocalFirstScheduler(std::uint32_t threshold)
      : threshold_(threshold) {}
  void attach(const SchedulerEnv& env) override;
  [[nodiscard]] net::ProcId choose(net::ProcId origin,
                                   const runtime::TaskPacket& packet) override;
  [[nodiscard]] core::SchedulerKind kind() const override {
    return core::SchedulerKind::kLocalFirst;
  }

 private:
  std::uint32_t threshold_;
  util::Xoshiro256 rng_{1};
  std::vector<util::Xoshiro256> origin_rng_;  // sharded mode only
};

/// Grit's constraint (paper §5.4, ref. [6]): "each node in the system is
/// limited to spawning child tasks to its immediate neighbors". Spawns go
/// to the least-loaded of {self} ∪ neighbours; recovery reissues from a
/// node whose neighbourhood died fall back to any alive processor (our
/// dynamic-allocation substrate subsumes Grit's static recovery sites).
class NeighborScheduler final : public Scheduler {
 public:
  [[nodiscard]] net::ProcId choose(net::ProcId origin,
                                   const runtime::TaskPacket& packet) override;
  [[nodiscard]] core::SchedulerKind kind() const override {
    return core::SchedulerKind::kNeighbor;
  }
};

/// Honour FunctionDef::pinned_processor; random among alive otherwise or
/// when the pinned host is dead. Used to script the paper's Figure 1.
class PinnedScheduler final : public Scheduler {
 public:
  void attach(const SchedulerEnv& env) override;
  [[nodiscard]] net::ProcId choose(net::ProcId origin,
                                   const runtime::TaskPacket& packet) override;
  [[nodiscard]] core::SchedulerKind kind() const override {
    return core::SchedulerKind::kPinned;
  }

 private:
  util::Xoshiro256 rng_{1};
  std::vector<util::Xoshiro256> origin_rng_;  // sharded mode only
};

/// Factory from configuration.
[[nodiscard]] std::unique_ptr<Scheduler> make_scheduler(
    const core::SchedulerConfig& config);

}  // namespace splice::sched
