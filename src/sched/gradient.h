// The gradient model load balancer (Lin & Keller, reference [10] of the
// paper: "Gradient model: a demand-driven load balancing scheme", ICDCS
// 1986).
//
// Idea: lightly-loaded processors act as sinks that create "suction". Every
// node maintains a *proximity* value: its topological distance to the
// nearest sink, computed by iterating  prox(p) = 0 if p is a sink else
// 1 + min over neighbours. Overloaded nodes push excess tasks to the
// neighbour with the smallest proximity, so tasks flow down the gradient
// toward idle regions.
//
// Fidelity note (documented substitution): the published scheme propagates
// proximities with explicit neighbour messages; we recompute the field by
// relaxation every `refresh_ticks` from queue lengths sampled at that
// instant, and charge 2*|edges| kLoadUpdate messages per refresh to the
// network counters. Between refreshes the field is stale — exactly the
// imperfect-information regime the gradient model operates in.
#pragma once

#include <cstdint>
#include <vector>

#include "sched/scheduler.h"

namespace splice::sched {

class GradientScheduler final : public Scheduler {
 public:
  GradientScheduler(std::int64_t refresh_ticks, std::uint32_t idle_threshold)
      : refresh_ticks_(refresh_ticks), idle_threshold_(idle_threshold) {}

  void attach(const SchedulerEnv& env) override;
  [[nodiscard]] net::ProcId choose(net::ProcId origin,
                                   const runtime::TaskPacket& packet) override;
  std::uint64_t on_tick(sim::SimTime now) override;
  [[nodiscard]] core::SchedulerKind kind() const override {
    return core::SchedulerKind::kGradient;
  }

  /// Exposed for tests: the current proximity field.
  [[nodiscard]] const std::vector<std::uint32_t>& proximities() const noexcept {
    return proximity_;
  }
  void refresh_now();

 private:
  std::int64_t refresh_ticks_;
  std::uint32_t idle_threshold_;
  std::vector<std::uint32_t> proximity_;
  sim::SimTime last_refresh_ = sim::SimTime(-1);
  util::Xoshiro256 rng_{1};
  std::vector<util::Xoshiro256> origin_rng_;  // sharded mode only
};

}  // namespace splice::sched
