#include "sched/scheduler.h"

#include <algorithm>

#include "sched/gradient.h"

namespace splice::sched {

Scheduler::DestVec Scheduler::choose_replicas(
    net::ProcId origin, const runtime::TaskPacket& packet,
    std::uint32_t count) {
  DestVec out;
  out.reserve(count);
  // Prefer distinct destinations; fall back to duplicates when fewer alive
  // processors exist than replicas requested.
  for (std::uint32_t attempt = 0; attempt < count * 8 && out.size() < count;
       ++attempt) {
    const net::ProcId p = choose(origin, packet);
    if (p == net::kNoProc) break;
    if (std::find(out.begin(), out.end(), p) == out.end()) {
      out.push_back(p);
    }
  }
  while (out.size() < count && !out.empty()) out.push_back(out[0]);
  return out;
}

void RandomScheduler::attach(const SchedulerEnv& env) {
  Scheduler::attach(env);
  seed_streams(origin_rng_, rng_, 0xA11CE);
}

net::ProcId RandomScheduler::choose(net::ProcId origin,
                                    const runtime::TaskPacket& packet) {
  const net::ProcId n = proc_count();
  util::Xoshiro256& rng = stream(origin_rng_, rng_, origin);
  // Rejection-sample eligible processors; bounded fallback scans (first
  // eligible, then merely alive-from-origin — the zone constraint is soft).
  for (int attempt = 0; attempt < 64; ++attempt) {
    const auto p = static_cast<net::ProcId>(rng.next_below(n));
    if (ok(origin, p, packet)) return p;
  }
  for (net::ProcId p = 0; p < n; ++p) {
    if (ok(origin, p, packet)) return p;
  }
  for (net::ProcId p = 0; p < n; ++p) {
    if (alive(origin, p)) return p;
  }
  return net::kNoProc;
}

void RoundRobinScheduler::attach(const SchedulerEnv& env) {
  Scheduler::attach(env);
  cursor_ = 0;
  origin_cursor_.clear();
  if (env_.sharded) {
    // Per-origin cursors start one past the origin so the first spawn from p
    // probes p+1 — the same neighbourly spread the shared cursor produces.
    origin_cursor_.resize(proc_count());
    for (net::ProcId p = 0; p < proc_count(); ++p) {
      origin_cursor_[p] = (p + 1) % std::max<net::ProcId>(proc_count(), 1);
    }
  }
}

net::ProcId RoundRobinScheduler::choose(net::ProcId origin,
                                        const runtime::TaskPacket& packet) {
  const net::ProcId n = proc_count();
  net::ProcId& cursor =
      origin < origin_cursor_.size() ? origin_cursor_[origin] : cursor_;
  for (net::ProcId step = 0; step < n; ++step) {
    const net::ProcId p = (cursor + step) % n;
    if (ok(origin, p, packet)) {
      cursor = (p + 1) % n;
      return p;
    }
  }
  for (net::ProcId step = 0; step < n; ++step) {
    const net::ProcId p = (cursor + step) % n;
    if (alive(origin, p)) {
      cursor = (p + 1) % n;
      return p;
    }
  }
  return net::kNoProc;
}

void LocalFirstScheduler::attach(const SchedulerEnv& env) {
  Scheduler::attach(env);
  seed_streams(origin_rng_, rng_, 0x10CA1);
}

net::ProcId LocalFirstScheduler::choose(net::ProcId origin,
                                        const runtime::TaskPacket& packet) {
  util::Xoshiro256& rng = stream(origin_rng_, rng_, origin);
  if (ok(origin, origin, packet) && load_of(origin) < threshold_) {
    return origin;
  }
  // Push to the least-loaded eligible neighbour.
  net::ProcId best = net::kNoProc;
  std::uint32_t best_load = UINT32_MAX;
  if (env_.topology != nullptr && origin < proc_count()) {
    for (net::ProcId q : env_.topology->neighbors(origin)) {
      if (!ok(origin, q, packet)) continue;
      const std::uint32_t l = load_of(q);
      if (l < best_load) {
        best_load = l;
        best = q;
      }
    }
  }
  if (best != net::kNoProc &&
      (best_load < threshold_ || !ok(origin, origin, packet))) {
    return best;
  }
  if (ok(origin, origin, packet)) return origin;
  // Constrained elsewhere (zone) or origin dead: any eligible node, then
  // any alive node.
  const net::ProcId n = proc_count();
  for (int attempt = 0; attempt < 64; ++attempt) {
    const auto p = static_cast<net::ProcId>(rng.next_below(n));
    if (ok(origin, p, packet)) return p;
  }
  for (net::ProcId p = 0; p < n; ++p) {
    if (ok(origin, p, packet)) return p;
  }
  for (net::ProcId p = 0; p < n; ++p) {
    if (alive(origin, p)) return p;
  }
  return net::kNoProc;
}

net::ProcId NeighborScheduler::choose(net::ProcId origin,
                                      const runtime::TaskPacket& packet) {
  // Least-loaded among self and immediate neighbours (Grit [6] confines
  // spawning to the neighbourhood; diffusion happens hop by hop).
  net::ProcId best = net::kNoProc;
  std::uint32_t best_load = UINT32_MAX;
  auto consider = [&](net::ProcId p) {
    if (!ok(origin, p, packet)) return;
    const std::uint32_t l = load_of(p);
    if (l < best_load) {
      best_load = l;
      best = p;
    }
  };
  if (origin < proc_count()) {
    consider(origin);
    for (net::ProcId q : env_.topology->neighbors(origin)) consider(q);
  }
  if (best != net::kNoProc) return best;
  // Whole neighbourhood dead/ineligible: any alive processor (the dynamic
  // allocator's escape hatch Grit provides via static recovery sites).
  for (net::ProcId p = 0; p < proc_count(); ++p) {
    if (ok(origin, p, packet)) return p;
  }
  for (net::ProcId p = 0; p < proc_count(); ++p) {
    if (alive(origin, p)) return p;
  }
  return net::kNoProc;
}

void PinnedScheduler::attach(const SchedulerEnv& env) {
  Scheduler::attach(env);
  seed_streams(origin_rng_, rng_, 0x919);
}

net::ProcId PinnedScheduler::choose(net::ProcId origin,
                                    const runtime::TaskPacket& packet) {
  const net::ProcId n = proc_count();
  util::Xoshiro256& rng = stream(origin_rng_, rng_, origin);
  if (env_.program != nullptr) {
    const auto pin = env_.program->function(packet.fn).pinned_processor;
    if (pin >= 0 && static_cast<net::ProcId>(pin) < n &&
        alive(origin, static_cast<net::ProcId>(pin))) {
      return static_cast<net::ProcId>(pin);
    }
  }
  for (int attempt = 0; attempt < 64; ++attempt) {
    const auto p = static_cast<net::ProcId>(rng.next_below(n));
    if (ok(origin, p, packet)) return p;
  }
  for (net::ProcId p = 0; p < n; ++p) {
    if (alive(origin, p)) return p;
  }
  return net::kNoProc;
}

std::unique_ptr<Scheduler> make_scheduler(const core::SchedulerConfig& config) {
  switch (config.kind) {
    case core::SchedulerKind::kRandom:
      return std::make_unique<RandomScheduler>();
    case core::SchedulerKind::kRoundRobin:
      return std::make_unique<RoundRobinScheduler>();
    case core::SchedulerKind::kLocalFirst:
      return std::make_unique<LocalFirstScheduler>(config.local_threshold);
    case core::SchedulerKind::kPinned:
      return std::make_unique<PinnedScheduler>();
    case core::SchedulerKind::kGradient:
      return std::make_unique<GradientScheduler>(config.gradient_refresh,
                                                 config.gradient_idle_threshold);
    case core::SchedulerKind::kNeighbor:
      return std::make_unique<NeighborScheduler>();
  }
  return std::make_unique<RandomScheduler>();
}

}  // namespace splice::sched
