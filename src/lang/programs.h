// The workload library: applicative programs whose distributed evaluation
// unfolds the call trees the recovery experiments operate on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lang/program.h"

namespace splice::lang::programs {

/// fib(n) with `leaf_work` ticks of pure compute at each leaf — the classic
/// unbalanced divide-and-conquer tree (2*fib(n+1)-1 tasks).
[[nodiscard]] Program fib(std::int64_t n, std::int64_t leaf_work = 1);

/// Binomial coefficient C(n, k) by Pascal recursion — a DAG-shaped
/// recomputation-heavy tree.
[[nodiscard]] Program binomial(std::int64_t n, std::int64_t k,
                               std::int64_t leaf_work = 1);

/// Balanced tree: `fanout`^`depth` leaves, `leaf_work` ticks each,
/// `interior_work` ticks per interior node. The workhorse synthetic
/// workload (task count and shape known in closed form).
[[nodiscard]] Program tree_sum(std::uint32_t depth, std::uint32_t fanout,
                               std::int64_t leaf_work = 20,
                               std::int64_t interior_work = 5);

/// Parallel merge sort over a deterministic pseudo-random list.
[[nodiscard]] Program mergesort(std::size_t length, std::uint64_t seed = 42,
                                std::size_t cutoff = 8);

/// Parallel quicksort (head pivot) over a deterministic pseudo-random list.
[[nodiscard]] Program quicksort(std::size_t length, std::uint64_t seed = 42,
                                std::size_t cutoff = 8);

/// n-queens solution count via the bitmask formulation — irregular fanout,
/// data-dependent tree shape.
[[nodiscard]] Program nqueens(std::uint32_t n);

/// Takeuchi's function tak(x,y,z) — the classic call-by-value stress test:
/// deep, heavily revisiting recursion with data-dependent shape.
[[nodiscard]] Program tak(std::int64_t x, std::int64_t y, std::int64_t z);

/// Map-reduce over iota(n): split into `chunks` ranges, "map" burns work
/// proportional to each range's sum, "reduce" adds partial sums. A flat,
/// wide farm — the opposite shape of the deep recursions above.
[[nodiscard]] Program map_reduce(std::int64_t n, std::uint32_t chunks,
                                 std::int64_t work_scale = 1);

/// One node of a scripted (explicit) call tree.
struct ScriptedNode {
  std::string name;
  std::vector<std::string> children;
  std::int64_t work = 10;
  /// Processor this node is pinned to under the kPinned scheduler; -1 for
  /// unpinned.
  std::int32_t pin = -1;
};

/// Build a program whose call tree is exactly `nodes` (first node = root).
/// Each node's value is its own `work` plus the sum of its children —
/// checkable in closed form.
[[nodiscard]] Program scripted_tree(const std::vector<ScriptedNode>& nodes);

/// The exact call tree of the paper's Figure 1, with tasks pinned to
/// processors A=0, B=1, C=2, D=3:
///
///   A1 ── B1
///     ├── C1 ── B2 ── D4 ── D5 ── A5
///     │          └── A2 ── D1 ── C4 ── B5
///     │                └── D2 ── B7
///     ├── C2 ── B3
///     └── C3 ── D3
///
/// Killing processor B (=1) fragments it into {A1,C1,C2,C3,D3},
/// {A2,D1,D2,C4}, {D4,D5,A5} exactly as in §3.
[[nodiscard]] Program figure1_tree(std::int64_t node_work = 60);

/// Names of all nodes in figure1_tree, in definition order.
[[nodiscard]] const std::vector<ScriptedNode>& figure1_nodes();

/// Expected answer of a scripted tree (sum of all work values).
[[nodiscard]] std::int64_t scripted_tree_answer(
    const std::vector<ScriptedNode>& nodes);

}  // namespace splice::lang::programs
