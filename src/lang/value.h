// Runtime values of the applicative language.
//
// Two cases suffice for every workload in the paper's setting: 64-bit
// integers and flat integer lists (for the sorting/merging programs).
// Lists are shared immutably (copy = pointer copy), which matches
// applicative semantics: no destructive modification ever happens.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace splice::lang {

class Value {
 public:
  /// Default-constructed value is the integer 0.
  Value() = default;

  [[nodiscard]] static Value integer(std::int64_t v) { return Value(v); }
  [[nodiscard]] static Value list(std::vector<std::int64_t> items) {
    return Value(std::make_shared<const std::vector<std::int64_t>>(
        std::move(items)));
  }
  [[nodiscard]] static Value boolean(bool b) { return Value(b ? 1 : 0); }

  [[nodiscard]] bool is_int() const noexcept { return list_ == nullptr; }
  [[nodiscard]] bool is_list() const noexcept { return list_ != nullptr; }

  /// Requires is_int().
  [[nodiscard]] std::int64_t as_int() const;
  /// Requires is_list().
  [[nodiscard]] const std::vector<std::int64_t>& as_list() const;

  /// Truthiness: nonzero integer or non-empty list.
  [[nodiscard]] bool truthy() const noexcept;

  /// Abstract wire size in network "units" (ints are 1; lists scale with
  /// length). Drives message latency.
  [[nodiscard]] std::uint32_t size_units() const noexcept;

  [[nodiscard]] bool operator==(const Value& other) const noexcept;
  [[nodiscard]] bool operator!=(const Value& other) const noexcept {
    return !(*this == other);
  }

  [[nodiscard]] std::string to_string() const;

 private:
  explicit Value(std::int64_t v) : int_(v) {}
  explicit Value(std::shared_ptr<const std::vector<std::int64_t>> l)
      : list_(std::move(l)) {}

  std::int64_t int_ = 0;
  std::shared_ptr<const std::vector<std::int64_t>> list_;
};

}  // namespace splice::lang
