// Reference sequential interpreter.
//
// Evaluates a Program exactly as the distributed runtime would (same strict
// semantics, same lazy If), without any distribution. Its answer is the
// determinacy oracle: every distributed run — faulted or not — must return
// the same value (§2.1 of the paper). It also reports call-tree statistics
// used to size experiments.
#pragma once

#include <cstdint>
#include <mutex>
#include <span>

#include "lang/program.h"

namespace splice::lang {

struct EvalStats {
  /// Number of function applications (call-tree node count, root included).
  std::uint64_t calls = 0;
  /// Deepest call chain (root = depth 1).
  std::uint32_t max_depth = 0;
  /// Total abstract primitive cost across all applications.
  std::uint64_t total_work = 0;
};

class Interpreter {
 public:
  /// depth_limit guards against runaway recursion in malformed programs.
  explicit Interpreter(const Program& program, std::uint32_t depth_limit = 100000)
      : program_(program), depth_limit_(depth_limit) {}

  /// Evaluate the entry application. Throws on malformed programs or
  /// primitive domain errors.
  [[nodiscard]] Value run();
  [[nodiscard]] Value run(EvalStats& stats);

  /// Evaluate one application fn(args) and its whole subtree.
  [[nodiscard]] Value apply(FuncId fn, std::span<const Value> args,
                            EvalStats& stats, std::uint32_t depth = 1);

  /// Evaluate the local (prim-only) part of a body given already-computed
  /// call results — shared with the runtime's final-fold logic in tests.
  [[nodiscard]] Value eval_expr(const FunctionDef& def, ExprId expr,
                                std::span<const Value> args,
                                EvalStats& stats, std::uint32_t depth);

 private:
  const Program& program_;
  std::uint32_t depth_limit_;
};

/// Convenience: reference answer of a program.
[[nodiscard]] Value reference_answer(const Program& program);
/// Convenience: call-tree statistics of a program.
[[nodiscard]] EvalStats reference_stats(const Program& program);

/// Memoized reference evaluation, shared across copies of the Program (the
/// slot travels with Program's shared_ptr). First caller pays the
/// interpreter walk; every later run — including the twin runs benches use
/// for clean-makespan baselines — reads the cache. Thread-safe.
struct ReferenceCache {
  std::once_flag once;
  Value answer;
  EvalStats stats;
};

[[nodiscard]] const ReferenceCache& cached_reference(const Program& program);

}  // namespace splice::lang
