#include "lang/value.h"

#include <sstream>
#include <stdexcept>

namespace splice::lang {

std::int64_t Value::as_int() const {
  if (!is_int()) throw std::logic_error("Value::as_int on a list");
  return int_;
}

const std::vector<std::int64_t>& Value::as_list() const {
  if (!is_list()) throw std::logic_error("Value::as_list on an int");
  return *list_;
}

bool Value::truthy() const noexcept {
  if (is_int()) return int_ != 0;
  return !list_->empty();
}

std::uint32_t Value::size_units() const noexcept {
  if (is_int()) return 1;
  return static_cast<std::uint32_t>(1 + list_->size() / 8);
}

bool Value::operator==(const Value& other) const noexcept {
  if (is_int() != other.is_int()) return false;
  if (is_int()) return int_ == other.int_;
  return *list_ == *other.list_;
}

std::string Value::to_string() const {
  if (is_int()) return std::to_string(int_);
  std::ostringstream out;
  out << "[";
  for (std::size_t i = 0; i < list_->size(); ++i) {
    if (i) out << " ";
    out << (*list_)[i];
    if (i >= 15 && list_->size() > 17) {
      out << " ...(" << list_->size() << ")";
      break;
    }
  }
  out << "]";
  return out.str();
}

}  // namespace splice::lang
