// Function definitions, whole programs, and a builder DSL.
//
// A Program is a set of named pure functions plus an entry application. Its
// distributed evaluation unfolds the paper's call tree: every Call node in a
// body spawns a child task.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "lang/expr.h"
#include "lang/value.h"

namespace splice::lang {

struct ReferenceCache;  // interpreter.h: memoized reference evaluation

struct FunctionDef {
  std::string name;
  std::uint32_t arity = 0;
  std::vector<ExprNode> nodes;  // arena; acyclic, children index lower nodes
  ExprId root = kNoExpr;

  /// Optional placement pin: when >= 0 and the scheduler honours pins, tasks
  /// of this function run on that processor. Used to script the paper's
  /// Figure 1 mapping exactly.
  std::int32_t pinned_processor = -1;
};

class Program {
 public:
  Program();

  [[nodiscard]] FuncId add_function(FunctionDef def);

  [[nodiscard]] const FunctionDef& function(FuncId id) const {
    return functions_.at(id);
  }
  /// Mutable access detaches the memoized reference cache *now*, at
  /// access time — so mutate through the returned reference before the
  /// next evaluation. Holding it across a run and editing afterwards
  /// would leave that run's freshly-computed cache stale.
  [[nodiscard]] FunctionDef& function_mut(FuncId id) {
    invalidate_reference();
    return functions_.at(id);
  }
  [[nodiscard]] std::size_t function_count() const noexcept {
    return functions_.size();
  }
  [[nodiscard]] std::optional<FuncId> find(const std::string& name) const;

  void set_entry(FuncId fn, std::vector<Value> args) {
    invalidate_reference();
    entry_ = fn;
    entry_args_ = std::move(args);
  }
  [[nodiscard]] FuncId entry() const noexcept { return entry_; }
  [[nodiscard]] const std::vector<Value>& entry_args() const noexcept {
    return entry_args_;
  }

  /// Structural validation: arities, arg indices, callee ids, child links,
  /// If shapes. Throws std::invalid_argument describing the first violation.
  void validate() const;

  [[nodiscard]] std::string name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Memoized reference-evaluation slot (interpreter.h::cached_reference).
  /// Copies of a Program share the slot, so the determinacy oracle runs the
  /// sequential interpreter once per program, not once per replicate — a
  /// fixed per-run cost benchmarks would otherwise keep paying. Mutating
  /// the program detaches it onto a fresh, empty slot.
  [[nodiscard]] const std::shared_ptr<ReferenceCache>& reference_cache()
      const noexcept {
    return ref_cache_;
  }

 private:
  void invalidate_reference();

  std::string name_;
  std::vector<FunctionDef> functions_;
  FuncId entry_ = 0;
  std::vector<Value> entry_args_;
  std::shared_ptr<ReferenceCache> ref_cache_;
};

/// Fluent builder for one function body. Nodes are appended to an arena;
/// helpers return ExprIds to be combined.
class FunctionBuilder {
 public:
  FunctionBuilder(std::string name, std::uint32_t arity)
      : def_{std::move(name), arity, {}, kNoExpr, -1} {}

  ExprId constant(Value v);
  ExprId constant(std::int64_t v) { return constant(Value::integer(v)); }
  ExprId arg(std::uint32_t index);
  ExprId prim(Op op, std::initializer_list<ExprId> children);
  ExprId prim(Op op, std::vector<ExprId> children);
  ExprId iff(ExprId cond, ExprId then_branch, ExprId else_branch);
  ExprId call(FuncId callee, std::initializer_list<ExprId> args);
  ExprId call(FuncId callee, std::vector<ExprId> args);

  // Common shorthands.
  ExprId add(ExprId a, ExprId b) { return prim(Op::kAdd, {a, b}); }
  ExprId sub(ExprId a, ExprId b) { return prim(Op::kSub, {a, b}); }
  ExprId lt(ExprId a, ExprId b) { return prim(Op::kLt, {a, b}); }
  ExprId le(ExprId a, ExprId b) { return prim(Op::kLe, {a, b}); }
  ExprId eq(ExprId a, ExprId b) { return prim(Op::kEq, {a, b}); }
  ExprId burn(ExprId a) { return prim(Op::kBurn, {a}); }

  /// Finish: set the root expression and (optionally) a placement pin.
  [[nodiscard]] FunctionDef build(ExprId root, std::int32_t pin = -1) &&;

 private:
  ExprId push(ExprNode node);
  FunctionDef def_;
};

}  // namespace splice::lang
