#include "lang/expr.h"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

namespace splice::lang {

std::string_view to_string(Op op) noexcept {
  switch (op) {
    case Op::kAdd: return "add";
    case Op::kSub: return "sub";
    case Op::kMul: return "mul";
    case Op::kDiv: return "div";
    case Op::kMod: return "mod";
    case Op::kNeg: return "neg";
    case Op::kMin: return "min";
    case Op::kMax: return "max";
    case Op::kEq: return "eq";
    case Op::kNe: return "ne";
    case Op::kLt: return "lt";
    case Op::kLe: return "le";
    case Op::kGt: return "gt";
    case Op::kGe: return "ge";
    case Op::kAnd: return "and";
    case Op::kOr: return "or";
    case Op::kNot: return "not";
    case Op::kBAnd: return "band";
    case Op::kBOr: return "bor";
    case Op::kBXor: return "bxor";
    case Op::kBNot: return "bnot";
    case Op::kShl: return "shl";
    case Op::kShr: return "shr";
    case Op::kBurn: return "burn";
    case Op::kLen: return "len";
    case Op::kHead: return "head";
    case Op::kTail: return "tail";
    case Op::kTake: return "take";
    case Op::kDrop: return "drop";
    case Op::kAppend: return "append";
    case Op::kCons: return "cons";
    case Op::kMerge: return "merge";
    case Op::kNth: return "nth";
    case Op::kSum: return "sum";
    case Op::kIota: return "iota";
    case Op::kFiltLt: return "filt_lt";
    case Op::kFiltGe: return "filt_ge";
  }
  return "?";
}

int op_arity(Op op) noexcept {
  switch (op) {
    case Op::kNeg:
    case Op::kNot:
    case Op::kBNot:
    case Op::kBurn:
    case Op::kLen:
    case Op::kHead:
    case Op::kTail:
    case Op::kSum:
    case Op::kIota:
      return 1;
    default:
      return 2;
  }
}

namespace {

std::int64_t int_of(const Value& v) { return v.as_int(); }

Value scalar2(Op op, std::int64_t a, std::int64_t b) {
  switch (op) {
    case Op::kAdd: return Value::integer(a + b);
    case Op::kSub: return Value::integer(a - b);
    case Op::kMul: return Value::integer(a * b);
    case Op::kDiv: return Value::integer(b == 0 ? 0 : a / b);
    case Op::kMod: return Value::integer(b == 0 ? 0 : a % b);
    case Op::kMin: return Value::integer(std::min(a, b));
    case Op::kMax: return Value::integer(std::max(a, b));
    case Op::kEq: return Value::boolean(a == b);
    case Op::kNe: return Value::boolean(a != b);
    case Op::kLt: return Value::boolean(a < b);
    case Op::kLe: return Value::boolean(a <= b);
    case Op::kGt: return Value::boolean(a > b);
    case Op::kGe: return Value::boolean(a >= b);
    case Op::kAnd: return Value::boolean(a != 0 && b != 0);
    case Op::kOr: return Value::boolean(a != 0 || b != 0);
    case Op::kBAnd: return Value::integer(a & b);
    case Op::kBOr: return Value::integer(a | b);
    case Op::kBXor: return Value::integer(a ^ b);
    case Op::kShl:
      return Value::integer(
          b <= 0 ? a : (b >= 63 ? 0 : static_cast<std::int64_t>(
                                          static_cast<std::uint64_t>(a) << b)));
    case Op::kShr:
      return Value::integer(
          b <= 0 ? a : (b >= 63 ? 0 : static_cast<std::int64_t>(
                                          static_cast<std::uint64_t>(a) >> b)));
    default:
      throw std::domain_error("scalar2: not a binary scalar op");
  }
}

}  // namespace

Value apply_prim(Op op, std::span<const Value> operands,
                 std::uint64_t* cost_out) {
  const auto expect = static_cast<std::size_t>(op_arity(op));
  if (operands.size() != expect) {
    throw std::domain_error(std::string("prim ") + std::string(to_string(op)) +
                            ": arity mismatch");
  }
  std::uint64_t cost = 1;
  Value result;
  switch (op) {
    case Op::kNeg:
      result = Value::integer(-int_of(operands[0]));
      break;
    case Op::kNot:
      result = Value::boolean(!operands[0].truthy());
      break;
    case Op::kBNot:
      result = Value::integer(~int_of(operands[0]));
      break;
    case Op::kBurn: {
      const std::int64_t n = int_of(operands[0]);
      cost = static_cast<std::uint64_t>(std::max<std::int64_t>(1, std::llabs(n)));
      result = operands[0];
      break;
    }
    case Op::kLen:
      cost = 1;
      result = Value::integer(
          static_cast<std::int64_t>(operands[0].as_list().size()));
      break;
    case Op::kHead: {
      const auto& xs = operands[0].as_list();
      if (xs.empty()) throw std::domain_error("head of empty list");
      result = Value::integer(xs.front());
      break;
    }
    case Op::kTail: {
      const auto& xs = operands[0].as_list();
      if (xs.empty()) throw std::domain_error("tail of empty list");
      cost = std::max<std::uint64_t>(1, xs.size());
      result = Value::list({xs.begin() + 1, xs.end()});
      break;
    }
    case Op::kSum: {
      const auto& xs = operands[0].as_list();
      cost = std::max<std::uint64_t>(1, xs.size());
      std::int64_t total = 0;
      for (auto x : xs) total += x;
      result = Value::integer(total);
      break;
    }
    case Op::kIota: {
      const std::int64_t n = std::max<std::int64_t>(0, int_of(operands[0]));
      cost = static_cast<std::uint64_t>(std::max<std::int64_t>(1, n));
      std::vector<std::int64_t> xs(static_cast<std::size_t>(n));
      for (std::int64_t i = 0; i < n; ++i) {
        xs[static_cast<std::size_t>(i)] = i;
      }
      result = Value::list(std::move(xs));
      break;
    }
    case Op::kTake: {
      const auto& xs = operands[0].as_list();
      const auto n = static_cast<std::size_t>(std::clamp<std::int64_t>(
          int_of(operands[1]), 0, static_cast<std::int64_t>(xs.size())));
      cost = std::max<std::uint64_t>(1, n);
      result = Value::list({xs.begin(), xs.begin() + static_cast<long>(n)});
      break;
    }
    case Op::kDrop: {
      const auto& xs = operands[0].as_list();
      const auto n = static_cast<std::size_t>(std::clamp<std::int64_t>(
          int_of(operands[1]), 0, static_cast<std::int64_t>(xs.size())));
      cost = std::max<std::uint64_t>(1, xs.size() - n);
      result = Value::list({xs.begin() + static_cast<long>(n), xs.end()});
      break;
    }
    case Op::kAppend: {
      const auto& a = operands[0].as_list();
      const auto& b = operands[1].as_list();
      cost = std::max<std::uint64_t>(1, a.size() + b.size());
      std::vector<std::int64_t> xs;
      xs.reserve(a.size() + b.size());
      xs.insert(xs.end(), a.begin(), a.end());
      xs.insert(xs.end(), b.begin(), b.end());
      result = Value::list(std::move(xs));
      break;
    }
    case Op::kCons: {
      const auto& b = operands[1].as_list();
      cost = std::max<std::uint64_t>(1, b.size() + 1);
      std::vector<std::int64_t> xs;
      xs.reserve(b.size() + 1);
      xs.push_back(int_of(operands[0]));
      xs.insert(xs.end(), b.begin(), b.end());
      result = Value::list(std::move(xs));
      break;
    }
    case Op::kMerge: {
      const auto& a = operands[0].as_list();
      const auto& b = operands[1].as_list();
      cost = std::max<std::uint64_t>(1, a.size() + b.size());
      std::vector<std::int64_t> xs;
      xs.reserve(a.size() + b.size());
      std::merge(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(xs));
      result = Value::list(std::move(xs));
      break;
    }
    case Op::kNth: {
      const auto& xs = operands[0].as_list();
      const std::int64_t i = int_of(operands[1]);
      if (i < 0 || static_cast<std::size_t>(i) >= xs.size()) {
        throw std::domain_error("nth out of range");
      }
      result = Value::integer(xs[static_cast<std::size_t>(i)]);
      break;
    }
    case Op::kFiltLt: {
      const auto& xs = operands[0].as_list();
      const std::int64_t pivot = int_of(operands[1]);
      cost = std::max<std::uint64_t>(1, xs.size());
      std::vector<std::int64_t> out;
      for (auto x : xs) {
        if (x < pivot) out.push_back(x);
      }
      result = Value::list(std::move(out));
      break;
    }
    case Op::kFiltGe: {
      const auto& xs = operands[0].as_list();
      const std::int64_t pivot = int_of(operands[1]);
      cost = std::max<std::uint64_t>(1, xs.size());
      std::vector<std::int64_t> out;
      for (auto x : xs) {
        if (x >= pivot) out.push_back(x);
      }
      result = Value::list(std::move(out));
      break;
    }
    default:
      result = scalar2(op, int_of(operands[0]), int_of(operands[1]));
      break;
  }
  if (cost_out != nullptr) *cost_out += cost;
  return result;
}

}  // namespace splice::lang
