// Expression IR of the applicative language.
//
// A function body is an arena of immutable expression nodes (index-linked,
// acyclic by construction). Node kinds:
//   Const  — literal Value
//   Arg    — i-th formal parameter
//   Prim   — strict primitive (arithmetic / logic / list ops / burn)
//   If     — lazy conditional: exactly one branch is evaluated
//   Call   — application of a program function; in the distributed runtime
//            every Call becomes a child task (the paper's call tree)
//
// Primitives carry an abstract cost (simulated ticks) so workloads have
// realistic compute/communication ratios; `burn` converts its operand into
// pure compute time, which is how synthetic trees shape per-task work.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "lang/value.h"

namespace splice::lang {

using ExprId = std::uint32_t;
using FuncId = std::uint32_t;
inline constexpr ExprId kNoExpr = UINT32_MAX;

enum class Op : std::uint8_t {
  // scalar arithmetic
  kAdd, kSub, kMul, kDiv, kMod, kNeg, kMin, kMax,
  // comparison / logic (produce 0/1 integers)
  kEq, kNe, kLt, kLe, kGt, kGe, kAnd, kOr, kNot,
  // bitwise (for the n-queens bitmask formulation)
  kBAnd, kBOr, kBXor, kBNot, kShl, kShr,
  // pure compute sink: returns its argument, costs |argument| ticks
  kBurn,
  // list operations
  kLen, kHead, kTail, kTake, kDrop, kAppend, kCons, kMerge, kNth, kSum,
  kIota, kFiltLt, kFiltGe,
};

[[nodiscard]] std::string_view to_string(Op op) noexcept;
[[nodiscard]] int op_arity(Op op) noexcept;

enum class ExprKind : std::uint8_t { kConst, kArg, kPrim, kIf, kCall };

struct ExprNode {
  ExprKind kind = ExprKind::kConst;
  // kConst
  Value literal;
  // kArg
  std::uint32_t arg_index = 0;
  // kPrim
  Op op = Op::kAdd;
  // kCall
  FuncId callee = 0;
  // kPrim operands / kCall arguments / kIf {cond, then, else}
  std::vector<ExprId> children;
};

/// Apply a primitive to evaluated operands. Throws std::domain_error on type
/// mismatch; division by zero yields 0 (total semantics keep programs pure).
/// `cost_out`, when non-null, accrues the abstract tick cost of this
/// application. Span-typed so hot callers can pass stack-resident operand
/// buffers without materialising a std::vector.
[[nodiscard]] Value apply_prim(Op op, std::span<const Value> operands,
                               std::uint64_t* cost_out);

}  // namespace splice::lang
