#include "lang/interpreter.h"

#include <stdexcept>

#include "util/small_vec.h"

namespace splice::lang {

Value Interpreter::run() {
  EvalStats stats;
  return run(stats);
}

Value Interpreter::run(EvalStats& stats) {
  program_.validate();
  return apply(program_.entry(), program_.entry_args(), stats, 1);
}

Value Interpreter::apply(FuncId fn, std::span<const Value> args,
                         EvalStats& stats, std::uint32_t depth) {
  if (depth > depth_limit_) {
    throw std::runtime_error("interpreter: depth limit exceeded");
  }
  const FunctionDef& def = program_.function(fn);
  if (args.size() != def.arity) {
    throw std::runtime_error("interpreter: arity mismatch calling " + def.name);
  }
  ++stats.calls;
  stats.max_depth = std::max(stats.max_depth, depth);
  return eval_expr(def, def.root, args, stats, depth);
}

Value Interpreter::eval_expr(const FunctionDef& def, ExprId expr,
                             std::span<const Value> args, EvalStats& stats,
                             std::uint32_t depth) {
  const ExprNode& node = def.nodes.at(expr);
  switch (node.kind) {
    case ExprKind::kConst:
      return node.literal;
    case ExprKind::kArg:
      return args[node.arg_index];
    case ExprKind::kPrim: {
      util::SmallVec<Value, 4> operands;
      operands.reserve(node.children.size());
      for (ExprId child : node.children) {
        operands.push_back(eval_expr(def, child, args, stats, depth));
      }
      return apply_prim(node.op, {operands.data(), operands.size()},
                        &stats.total_work);
    }
    case ExprKind::kIf: {
      const Value cond = eval_expr(def, node.children[0], args, stats, depth);
      ++stats.total_work;
      const ExprId branch = cond.truthy() ? node.children[1] : node.children[2];
      return eval_expr(def, branch, args, stats, depth);
    }
    case ExprKind::kCall: {
      util::SmallVec<Value, 4> call_args;
      call_args.reserve(node.children.size());
      for (ExprId child : node.children) {
        call_args.push_back(eval_expr(def, child, args, stats, depth));
      }
      return apply(node.callee, {call_args.data(), call_args.size()}, stats,
                   depth + 1);
    }
  }
  throw std::logic_error("interpreter: bad expr kind");
}

Value reference_answer(const Program& program) {
  Interpreter interp(program);
  return interp.run();
}

EvalStats reference_stats(const Program& program) {
  Interpreter interp(program);
  EvalStats stats;
  (void)interp.run(stats);
  return stats;
}

const ReferenceCache& cached_reference(const Program& program) {
  ReferenceCache& cache = *program.reference_cache();
  std::call_once(cache.once, [&] {
    Interpreter interp(program);
    cache.answer = interp.run(cache.stats);
  });
  return cache;
}

}  // namespace splice::lang
