#include "lang/program.h"

#include <stdexcept>

#include "lang/interpreter.h"

namespace splice::lang {

Program::Program() : ref_cache_(std::make_shared<ReferenceCache>()) {}

void Program::invalidate_reference() {
  // Detach onto a fresh, never-run slot; copies made earlier keep theirs.
  ref_cache_ = std::make_shared<ReferenceCache>();
}

FuncId Program::add_function(FunctionDef def) {
  invalidate_reference();
  functions_.push_back(std::move(def));
  return static_cast<FuncId>(functions_.size() - 1);
}

std::optional<FuncId> Program::find(const std::string& name) const {
  for (std::size_t i = 0; i < functions_.size(); ++i) {
    if (functions_[i].name == name) return static_cast<FuncId>(i);
  }
  return std::nullopt;
}

void Program::validate() const {
  if (functions_.empty()) {
    throw std::invalid_argument("program has no functions");
  }
  if (entry_ >= functions_.size()) {
    throw std::invalid_argument("entry function id out of range");
  }
  if (entry_args_.size() != functions_[entry_].arity) {
    throw std::invalid_argument("entry argument count != entry arity");
  }
  for (std::size_t f = 0; f < functions_.size(); ++f) {
    const FunctionDef& def = functions_[f];
    if (def.root == kNoExpr || def.root >= def.nodes.size()) {
      throw std::invalid_argument("function " + def.name + ": bad root");
    }
    for (std::size_t n = 0; n < def.nodes.size(); ++n) {
      const ExprNode& node = def.nodes[n];
      for (ExprId child : node.children) {
        if (child >= n) {
          throw std::invalid_argument(
              "function " + def.name +
              ": child index not strictly below parent (cycle?)");
        }
      }
      switch (node.kind) {
        case ExprKind::kConst:
          break;
        case ExprKind::kArg:
          if (node.arg_index >= def.arity) {
            throw std::invalid_argument("function " + def.name +
                                        ": arg index out of range");
          }
          break;
        case ExprKind::kPrim:
          if (node.children.size() !=
              static_cast<std::size_t>(op_arity(node.op))) {
            throw std::invalid_argument("function " + def.name + ": prim " +
                                        std::string(to_string(node.op)) +
                                        " arity mismatch");
          }
          break;
        case ExprKind::kIf:
          if (node.children.size() != 3) {
            throw std::invalid_argument("function " + def.name +
                                        ": if needs 3 children");
          }
          break;
        case ExprKind::kCall: {
          if (node.callee >= functions_.size()) {
            throw std::invalid_argument("function " + def.name +
                                        ": callee out of range");
          }
          const FunctionDef& callee = functions_[node.callee];
          if (node.children.size() != callee.arity) {
            throw std::invalid_argument("function " + def.name + ": call to " +
                                        callee.name + " arity mismatch");
          }
          break;
        }
      }
    }
  }
}

ExprId FunctionBuilder::push(ExprNode node) {
  def_.nodes.push_back(std::move(node));
  return static_cast<ExprId>(def_.nodes.size() - 1);
}

ExprId FunctionBuilder::constant(Value v) {
  ExprNode node;
  node.kind = ExprKind::kConst;
  node.literal = std::move(v);
  return push(std::move(node));
}

ExprId FunctionBuilder::arg(std::uint32_t index) {
  ExprNode node;
  node.kind = ExprKind::kArg;
  node.arg_index = index;
  return push(std::move(node));
}

ExprId FunctionBuilder::prim(Op op, std::initializer_list<ExprId> children) {
  return prim(op, std::vector<ExprId>(children));
}

ExprId FunctionBuilder::prim(Op op, std::vector<ExprId> children) {
  ExprNode node;
  node.kind = ExprKind::kPrim;
  node.op = op;
  node.children = std::move(children);
  return push(std::move(node));
}

ExprId FunctionBuilder::iff(ExprId cond, ExprId then_branch,
                            ExprId else_branch) {
  ExprNode node;
  node.kind = ExprKind::kIf;
  node.children = {cond, then_branch, else_branch};
  return push(std::move(node));
}

ExprId FunctionBuilder::call(FuncId callee, std::initializer_list<ExprId> args) {
  return call(callee, std::vector<ExprId>(args));
}

ExprId FunctionBuilder::call(FuncId callee, std::vector<ExprId> args) {
  ExprNode node;
  node.kind = ExprKind::kCall;
  node.callee = callee;
  node.children = std::move(args);
  return push(std::move(node));
}

FunctionDef FunctionBuilder::build(ExprId root, std::int32_t pin) && {
  def_.root = root;
  def_.pinned_processor = pin;
  return std::move(def_);
}

}  // namespace splice::lang
