#include "lang/programs.h"

#include <map>
#include <stdexcept>

#include "util/rng.h"

namespace splice::lang::programs {

namespace {

/// burn(work) - work == 0, at a cost of `work` ticks: pure compute.
ExprId burn0(FunctionBuilder& b, std::int64_t work) {
  const ExprId w = b.constant(work);
  return b.sub(b.burn(w), w);
}

std::vector<std::int64_t> pseudo_random_list(std::size_t length,
                                             std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::int64_t> xs(length);
  for (auto& x : xs) x = static_cast<std::int64_t>(rng.next_below(1000000));
  return xs;
}

}  // namespace

Program fib(std::int64_t n, std::int64_t leaf_work) {
  Program p;
  p.set_name("fib(" + std::to_string(n) + ")");
  // fib(n) = n < 2 ? n + burn0 : fib(n-1) + fib(n-2)
  FunctionBuilder b("fib", 1);
  const FuncId self = 0;  // will be function 0
  const ExprId arg_n = b.arg(0);
  const ExprId base = b.add(arg_n, burn0(b, leaf_work));
  const ExprId n1 = b.call(self, {b.sub(arg_n, b.constant(1))});
  const ExprId n2 = b.call(self, {b.sub(arg_n, b.constant(2))});
  const ExprId rec = b.add(n1, n2);
  const ExprId root = b.iff(b.lt(arg_n, b.constant(2)), base, rec);
  const FuncId fn = p.add_function(std::move(b).build(root));
  p.set_entry(fn, {Value::integer(n)});
  return p;
}

Program binomial(std::int64_t n, std::int64_t k, std::int64_t leaf_work) {
  Program p;
  p.set_name("C(" + std::to_string(n) + "," + std::to_string(k) + ")");
  // binom(n,k) = (k == 0 || k == n) ? 1 + burn0 : binom(n-1,k-1)+binom(n-1,k)
  FunctionBuilder b("binom", 2);
  const FuncId self = 0;
  const ExprId an = b.arg(0);
  const ExprId ak = b.arg(1);
  const ExprId is_edge = b.prim(
      Op::kOr, {b.eq(ak, b.constant(0)), b.eq(ak, an)});
  const ExprId base = b.add(b.constant(1), burn0(b, leaf_work));
  const ExprId left =
      b.call(self, {b.sub(an, b.constant(1)), b.sub(ak, b.constant(1))});
  const ExprId right = b.call(self, {b.sub(an, b.constant(1)), ak});
  const ExprId root = b.iff(is_edge, base, b.add(left, right));
  const FuncId fn = p.add_function(std::move(b).build(root));
  p.set_entry(fn, {Value::integer(n), Value::integer(k)});
  return p;
}

Program tree_sum(std::uint32_t depth, std::uint32_t fanout,
                 std::int64_t leaf_work, std::int64_t interior_work) {
  if (fanout == 0) throw std::invalid_argument("tree_sum: fanout >= 1");
  Program p;
  p.set_name("tree(" + std::to_string(depth) + "^" + std::to_string(fanout) +
             ")");
  // t(d) = d == 0 ? 1 + burn0(leaf) : burn0(interior) + sum_i t(d-1)
  FunctionBuilder b("tree", 1);
  const FuncId self = 0;
  const ExprId d = b.arg(0);
  const ExprId leaf = b.add(b.constant(1), burn0(b, leaf_work));
  ExprId acc = burn0(b, interior_work);
  for (std::uint32_t i = 0; i < fanout; ++i) {
    acc = b.add(acc, b.call(self, {b.sub(d, b.constant(1))}));
  }
  const ExprId root = b.iff(b.le(d, b.constant(0)), leaf, acc);
  const FuncId fn = p.add_function(std::move(b).build(root));
  p.set_entry(fn, {Value::integer(depth)});
  return p;
}

Program mergesort(std::size_t length, std::uint64_t seed, std::size_t cutoff) {
  Program p;
  p.set_name("mergesort(" + std::to_string(length) + ")");
  // ms(xs) = len(xs) <= cutoff ? slow_sort_local : merge(ms(lo), ms(hi))
  // The local base case sorts by repeated min-extraction via merge of
  // singletons — modelled as a merge of the (short) list with [] after a
  // burn proportional to len^2, which is what an insertion sort costs.
  FunctionBuilder b("msort", 1);
  const FuncId self = 0;
  const ExprId xs = b.arg(0);
  const ExprId len = b.prim(Op::kLen, {xs});
  // Splitting always recurses down to singletons, which are sorted by
  // definition, so the merge tree produces an exactly sorted list.
  const ExprId base = xs;
  const ExprId half = b.prim(Op::kDiv, {len, b.constant(2)});
  const ExprId lo = b.prim(Op::kTake, {xs, half});
  const ExprId hi = b.prim(Op::kDrop, {xs, half});
  const ExprId merged =
      b.prim(Op::kMerge, {b.call(self, {lo}), b.call(self, {hi})});
  const ExprId root = b.iff(b.le(len, b.constant(1)), base, merged);
  const FuncId fn = p.add_function(std::move(b).build(root));
  (void)cutoff;  // exact variant always splits to singletons
  p.set_entry(fn, {Value::list(pseudo_random_list(length, seed))});
  return p;
}

Program quicksort(std::size_t length, std::uint64_t seed, std::size_t cutoff) {
  Program p;
  p.set_name("quicksort(" + std::to_string(length) + ")");
  // qs(xs) = len <= 1 ? xs
  //        : append(qs(filt_lt(tail, head)),
  //                 cons(head, qs(filt_ge(tail, head))))
  FunctionBuilder b("qsort", 1);
  const FuncId self = 0;
  const ExprId xs = b.arg(0);
  const ExprId len = b.prim(Op::kLen, {xs});
  const ExprId head = b.prim(Op::kHead, {xs});
  const ExprId tail = b.prim(Op::kTail, {xs});
  const ExprId less = b.prim(Op::kFiltLt, {tail, head});
  const ExprId more = b.prim(Op::kFiltGe, {tail, head});
  const ExprId sorted = b.prim(
      Op::kAppend,
      {b.call(self, {less}),
       b.prim(Op::kCons, {head, b.call(self, {more})})});
  const ExprId root = b.iff(b.le(len, b.constant(1)), xs, sorted);
  const FuncId fn = p.add_function(std::move(b).build(root));
  (void)cutoff;
  p.set_entry(fn, {Value::list(pseudo_random_list(length, seed))});
  return p;
}

Program nqueens(std::uint32_t n) {
  Program p;
  p.set_name("nqueens(" + std::to_string(n) + ")");
  const std::int64_t full = (1LL << n) - 1;
  // solve(cols, ld, rd): number of completions given occupied columns /
  //   left- / right-diagonals.
  // scan(cols, ld, rd, avail): iterate available positions.
  //   solve = cols == full ? 1 : scan(cols, ld, rd, ~(cols|ld|rd) & full)
  //   scan  = avail == 0 ? 0 :
  //           scan(cols, ld, rd, avail & (avail-1))            [drop lowbit]
  //         + solve(cols|p, (ld|p)<<1 & full, (rd|p)>>1)  where p = lowbit
  Program prog;
  {
    FunctionBuilder b("solve", 3);
    const FuncId kScan = 1;
    const ExprId cols = b.arg(0), ld = b.arg(1), rd = b.arg(2);
    const ExprId fullc = b.constant(full);
    const ExprId occupied = b.prim(Op::kBOr, {b.prim(Op::kBOr, {cols, ld}), rd});
    const ExprId avail =
        b.prim(Op::kBAnd, {b.prim(Op::kBNot, {occupied}), fullc});
    const ExprId rec = b.call(kScan, {cols, ld, rd, avail});
    const ExprId root = b.iff(b.eq(cols, fullc), b.constant(1), rec);
    (void)prog.add_function(std::move(b).build(root));
  }
  {
    FunctionBuilder b("scan", 4);
    const FuncId kSolve = 0, kScan = 1;
    const ExprId cols = b.arg(0), ld = b.arg(1), rd = b.arg(2),
                 avail = b.arg(3);
    const ExprId fullc = b.constant(full);
    // p = avail & -avail  (lowest set bit)
    const ExprId lowbit =
        b.prim(Op::kBAnd, {avail, b.prim(Op::kNeg, {avail})});
    const ExprId rest =
        b.call(kScan,
               {cols, ld, rd,
                b.prim(Op::kBAnd, {avail, b.sub(avail, b.constant(1))})});
    const ExprId place = b.call(
        kSolve,
        {b.prim(Op::kBOr, {cols, lowbit}),
         b.prim(Op::kBAnd,
                {b.prim(Op::kShl, {b.prim(Op::kBOr, {ld, lowbit}),
                                   b.constant(1)}),
                 fullc}),
         b.prim(Op::kShr,
                {b.prim(Op::kBOr, {rd, lowbit}), b.constant(1)})});
    const ExprId root = b.iff(b.eq(avail, b.constant(0)), b.constant(0),
                              b.add(rest, place));
    (void)prog.add_function(std::move(b).build(root));
  }
  prog.set_entry(0, {Value::integer(0), Value::integer(0), Value::integer(0)});
  prog.set_name(p.name());
  return prog;
}

Program tak(std::int64_t x, std::int64_t y, std::int64_t z) {
  Program p;
  p.set_name("tak(" + std::to_string(x) + "," + std::to_string(y) + "," +
             std::to_string(z) + ")");
  // tak(x,y,z) = y >= x ? z
  //            : tak(tak(x-1,y,z), tak(y-1,z,x), tak(z-1,x,y))
  FunctionBuilder b("tak", 3);
  const FuncId self = 0;
  const ExprId ax = b.arg(0), ay = b.arg(1), az = b.arg(2);
  const ExprId one = b.constant(1);
  const ExprId t1 = b.call(self, {b.sub(ax, one), ay, az});
  const ExprId t2 = b.call(self, {b.sub(ay, one), az, ax});
  const ExprId t3 = b.call(self, {b.sub(az, one), ax, ay});
  const ExprId rec = b.call(self, {t1, t2, t3});
  const ExprId root = b.iff(b.prim(Op::kGe, {ay, ax}), az, rec);
  const FuncId fn = p.add_function(std::move(b).build(root));
  p.set_entry(fn, {Value::integer(x), Value::integer(y), Value::integer(z)});
  return p;
}

Program map_reduce(std::int64_t n, std::uint32_t chunks,
                   std::int64_t work_scale) {
  if (chunks == 0) throw std::invalid_argument("map_reduce: chunks >= 1");
  Program p;
  p.set_name("map_reduce(" + std::to_string(n) + "," +
             std::to_string(chunks) + ")");
  // map(lo, hi): partial = sum(drop(take(iota(n), hi), lo));
  //              burn(partial * scale) / scale == partial, costed scale-fold
  const std::int64_t scale = std::max<std::int64_t>(1, work_scale);
  FuncId map_fn;
  {
    FunctionBuilder b("map", 2);
    const ExprId lo = b.arg(0), hi = b.arg(1);
    const ExprId all = b.prim(Op::kIota, {b.constant(n)});
    const ExprId range =
        b.prim(Op::kDrop, {b.prim(Op::kTake, {all, hi}), lo});
    const ExprId partial = b.prim(Op::kSum, {range});
    const ExprId burned =
        b.burn(b.prim(Op::kMul, {partial, b.constant(scale)}));
    const ExprId root = b.prim(Op::kDiv, {burned, b.constant(scale)});
    map_fn = p.add_function(std::move(b).build(root));
  }
  {
    FunctionBuilder b("reduce", 0);
    ExprId acc = b.constant(0);
    const std::int64_t step =
        (n + static_cast<std::int64_t>(chunks) - 1) /
        static_cast<std::int64_t>(chunks);
    for (std::uint32_t c = 0; c < chunks; ++c) {
      const std::int64_t lo = std::min<std::int64_t>(n, c * step);
      const std::int64_t hi = std::min<std::int64_t>(n, lo + step);
      acc = b.add(acc, b.call(map_fn, {b.constant(lo), b.constant(hi)}));
    }
    const FuncId fn = p.add_function(std::move(b).build(acc));
    p.set_entry(fn, {});
  }
  return p;
}

Program scripted_tree(const std::vector<ScriptedNode>& nodes) {
  if (nodes.empty()) throw std::invalid_argument("scripted_tree: empty");
  Program p;
  p.set_name("scripted(" + nodes.front().name + ")");
  std::map<std::string, FuncId> ids;
  // Children reference later definitions, so allocate ids first by adding
  // placeholder functions in order, then rebuild each body.
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (!ids.emplace(nodes[i].name, static_cast<FuncId>(i)).second) {
      throw std::invalid_argument("scripted_tree: duplicate node " +
                                  nodes[i].name);
    }
    FunctionBuilder placeholder(nodes[i].name, 0);
    ExprId zero = placeholder.constant(0);
    (void)p.add_function(std::move(placeholder).build(zero));
  }
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const ScriptedNode& node = nodes[i];
    FunctionBuilder b(node.name, 0);
    // value = burn(work) + sum(children)
    ExprId acc = b.burn(b.constant(node.work));
    for (const std::string& child : node.children) {
      const auto it = ids.find(child);
      if (it == ids.end()) {
        throw std::invalid_argument("scripted_tree: unknown child " + child);
      }
      acc = b.add(acc, b.call(it->second, {}));
    }
    p.function_mut(static_cast<FuncId>(i)) =
        std::move(b).build(acc, node.pin);
  }
  p.set_entry(0, {});
  return p;
}

std::int64_t scripted_tree_answer(const std::vector<ScriptedNode>& nodes) {
  std::int64_t total = 0;
  for (const ScriptedNode& node : nodes) total += node.work;
  return total;
}

const std::vector<ScriptedNode>& figure1_nodes() {
  // Processor pins: A=0, B=1, C=2, D=3 (the paper's mapping).
  static const std::vector<ScriptedNode> kNodes = {
      {"A1", {"B1", "C1", "C2", "C3"}, 60, 0},
      {"B1", {}, 60, 1},
      {"C1", {"B2"}, 60, 2},
      {"C2", {"B3"}, 60, 2},
      {"C3", {"D3"}, 60, 2},
      {"B2", {"D4", "A2"}, 60, 1},
      {"B3", {}, 60, 1},
      {"D3", {}, 60, 3},
      {"D4", {"D5"}, 60, 3},
      {"D5", {"A5"}, 60, 3},
      {"A5", {}, 60, 0},
      {"A2", {"D1", "D2"}, 60, 0},
      {"D1", {"C4"}, 60, 3},
      {"D2", {"B7"}, 60, 3},
      {"C4", {"B5"}, 60, 2},
      {"B5", {}, 60, 1},
      {"B7", {}, 60, 1},
  };
  return kNodes;
}

Program figure1_tree(std::int64_t node_work) {
  std::vector<ScriptedNode> nodes = figure1_nodes();
  for (ScriptedNode& node : nodes) node.work = node_work;
  Program p = scripted_tree(nodes);
  p.set_name("figure1");
  return p;
}

}  // namespace splice::lang::programs
