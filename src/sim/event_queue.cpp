#include "sim/event_queue.h"

#include <cassert>

namespace splice::sim {

EventId EventQueue::schedule(SimTime when, EventFn fn) {
  const EventId id = next_id_++;
  if (callbacks_.size() <= id) callbacks_.resize(id + 1);
  callbacks_[id] = std::move(fn);
  heap_.push(Entry{when, id});
  ++live_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  if (id == kInvalidEvent || id >= callbacks_.size() || !callbacks_[id]) {
    return false;
  }
  callbacks_[id] = nullptr;
  --live_;
  return true;
}

bool EventQueue::empty() const noexcept { return live_ == 0; }

SimTime EventQueue::next_time() const {
  assert(!heap_.empty());
  return heap_.top().when;
}

SimTime EventQueue::run_next(SimTime* clock) {
  // Skip lazily-cancelled slots.
  while (!heap_.empty()) {
    const Entry top = heap_.top();
    heap_.pop();
    EventFn& slot = callbacks_[top.id];
    if (!slot) continue;  // cancelled
    EventFn fn = std::move(slot);
    slot = nullptr;
    --live_;
    if (clock != nullptr) *clock = top.when;
    fn();
    return top.when;
  }
  assert(false && "run_next on empty queue");
  return SimTime::zero();
}

}  // namespace splice::sim
