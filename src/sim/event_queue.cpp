#include "sim/event_queue.h"

#include <algorithm>
#include <bit>
#include <cassert>

namespace splice::sim {

namespace {
// Min-heap comparator: the heap's top is the earliest (when, seq).
struct OverflowLater {
  bool operator()(const auto& a, const auto& b) const noexcept {
    if (a.when != b.when) return a.when > b.when;
    return a.seq > b.seq;  // FIFO among equal-time events
  }
};
}  // namespace

// ---------------------------------------------------------------------------
// Slot table
// ---------------------------------------------------------------------------

std::uint32_t EventQueue::acquire_slot(std::int64_t when, EventFn fn) {
  if (!free_slots_.empty()) {
    const std::uint32_t idx = free_slots_.back();
    free_slots_.pop_back();
    Slot& slot = slots_[idx];
    slot.fn = std::move(fn);
    slot.when = when;
    return idx;
  }
  slots_.push_back(Slot{std::move(fn), when, 1});
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void EventQueue::free_slot(std::uint32_t slot) noexcept {
  Slot& s = slots_[slot];
  s.fn = nullptr;  // destroy the callable (and its captures) immediately
  ++s.gen;         // every queued entry and handed-out id becomes stale
  free_slots_.push_back(slot);
}

// ---------------------------------------------------------------------------
// Occupancy bitmap
// ---------------------------------------------------------------------------

// The size_t casts below intend two's-complement wraparound: `when` is a
// signed tick but the bucket index is its value modulo kWindowSize (a power
// of two), and converting to unsigned before masking makes the modulo
// well-defined for any tick the ring can legally hold.
void EventQueue::set_occupied(std::int64_t when) noexcept {
  const std::size_t j = static_cast<std::size_t>(when) & (kWindowSize - 1);
  occupied_[j >> 6] |= std::uint64_t{1} << (j & 63);
}

void EventQueue::clear_occupied(std::int64_t when) noexcept {
  const std::size_t j = static_cast<std::size_t>(when) & (kWindowSize - 1);
  occupied_[j >> 6] &= ~(std::uint64_t{1} << (j & 63));
}

std::int64_t EventQueue::next_occupied_offset(
    std::int64_t from_offset) const noexcept {
  // Scan in *time* order: offsets map to bucket indices modulo kWindowSize,
  // so the walk is cyclic over the bitmap but monotone in time. Word steps
  // never straddle the array edge because kWindowSize is a multiple of 64.
  std::int64_t off = from_offset;
  while (off < kWindowSize) {
    const std::size_t j =
        static_cast<std::size_t>(base_ + off) & (kWindowSize - 1);
    const std::uint64_t bits = occupied_[j >> 6] >> (j & 63);
    if (bits != 0) {
      const std::int64_t hit = off + std::countr_zero(bits);
      assert(hit < kWindowSize);
      return hit;
    }
    off += 64 - static_cast<std::int64_t>(j & 63);
  }
  return kWindowSize;
}

// ---------------------------------------------------------------------------
// Overflow tier
// ---------------------------------------------------------------------------

void EventQueue::overflow_push(OverflowEntry entry) {
  overflow_.push_back(entry);
  std::push_heap(overflow_.begin(), overflow_.end(), OverflowLater{});
}

void EventQueue::overflow_pop_top() noexcept {
  std::pop_heap(overflow_.begin(), overflow_.end(), OverflowLater{});
  overflow_.pop_back();
}

void EventQueue::overflow_drop_dead_tops() noexcept {
  while (!overflow_.empty() &&
         !entry_live(overflow_[0].slot, overflow_[0].gen)) {
    overflow_pop_top();
    --overflow_dead_;
  }
}

// ---------------------------------------------------------------------------
// Window maintenance
// ---------------------------------------------------------------------------

void EventQueue::restore_head() {
  std::int64_t off = scan_offset_;
  while ((off = next_occupied_offset(off)) < kWindowSize) {
    Bucket& b = bucket_of(base_ + off);
    while (b.head < b.items.size()) {
      const Entry& e = b.items[b.head];
      if (entry_live(e.slot, e.gen)) {
        scan_offset_ = off;
        head_when_ = base_ + off;
        head_in_window_ = true;
        return;
      }
      ++b.head;  // discard tombstone
      --window_dead_;
    }
    b.items.clear();
    b.head = 0;
    clear_occupied(base_ + off);
    ++off;
  }
  // Window fully drained (and every bucket cleared).
  assert(window_live_ == 0 && window_dead_ == 0);
  scan_offset_ = 0;
  span_max_ = base_;
  overflow_drop_dead_tops();
  if (!overflow_.empty()) {
    head_when_ = overflow_[0].when;
    head_in_window_ = false;
  }
  // else: live_ must be 0 and the head is simply invalid until re-anchoring.
}

void EventQueue::migrate_overflow() {
  while (!overflow_.empty()) {
    const OverflowEntry top = overflow_[0];
    if (!entry_live(top.slot, top.gen)) {
      overflow_pop_top();
      --overflow_dead_;
      continue;
    }
    if (top.when - base_ >= kWindowSize) break;
    overflow_pop_top();
    --overflow_live_;
    Bucket& b = bucket_of(top.when);
    b.items.push_back(Entry{top.seq, top.slot, top.gen});
    set_occupied(top.when);
    ++window_live_;
    span_max_ = std::max(span_max_, top.when);
  }
}

void EventQueue::rotate_window() {
  // Only called from run_next when the head sits in the overflow tier: the
  // window is empty, and head_when_ is about to become "now", so no future
  // schedule can legally land below the new base.
  assert(window_live_ == 0 && window_dead_ == 0);
  base_ = head_when_;
  span_max_ = base_;
  scan_offset_ = 0;
  migrate_overflow();  // overflow pops arrive (when, seq)-sorted: FIFO holds
  assert(window_live_ > 0);
  head_in_window_ = true;
}

void EventQueue::demote_window() {
  std::int64_t off = 0;
  while ((off = next_occupied_offset(off)) < kWindowSize) {
    Bucket& b = bucket_of(base_ + off);
    for (std::size_t i = b.head; i < b.items.size(); ++i) {
      const Entry& e = b.items[i];
      if (!entry_live(e.slot, e.gen)) {
        --window_dead_;
        continue;
      }
      overflow_push(OverflowEntry{base_ + off, e.seq, e.slot, e.gen});
      --window_live_;
      ++overflow_live_;
    }
    b.items.clear();
    b.head = 0;
    clear_occupied(base_ + off);
    ++off;
  }
  scan_offset_ = 0;
}

void EventQueue::purge_all_dead() noexcept {
  std::int64_t off = 0;
  while ((off = next_occupied_offset(off)) < kWindowSize) {
    Bucket& b = bucket_of(base_ + off);
    b.items.clear();
    b.head = 0;
    clear_occupied(base_ + off);
    ++off;
  }
  overflow_.clear();
  window_dead_ = 0;
  overflow_dead_ = 0;
}

void EventQueue::maybe_compact() {
  if (overflow_dead_ > 64 && overflow_dead_ > overflow_live_) {
    std::erase_if(overflow_, [&](const OverflowEntry& e) {
      return !entry_live(e.slot, e.gen);
    });
    std::make_heap(overflow_.begin(), overflow_.end(), OverflowLater{});
    overflow_dead_ = 0;
    ++compactions_;
  }
  if (window_dead_ > 64 && window_dead_ > window_live_) {
    std::int64_t off = scan_offset_;
    while ((off = next_occupied_offset(off)) < kWindowSize) {
      Bucket& b = bucket_of(base_ + off);
      b.items.erase(b.items.begin(),
                    b.items.begin() + static_cast<std::ptrdiff_t>(b.head));
      b.head = 0;
      std::erase_if(b.items, [&](const Entry& e) {
        return !entry_live(e.slot, e.gen);
      });
      if (b.items.empty()) clear_occupied(base_ + off);
      ++off;
    }
    window_dead_ = 0;
    ++compactions_;
  }
}

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

EventId EventQueue::schedule(SimTime when_t, EventFn fn) {
  std::int64_t when = when_t.ticks();
  if (live_ == 0) {
    if (window_dead_ != 0 || overflow_dead_ != 0) purge_all_dead();
    base_ = when;
    scan_offset_ = 0;
    span_max_ = when;
  } else if (when < base_) {
    // Below the window base (only legal from a standalone queue that was
    // anchored by a later first event). Slide the base down when the window
    // span still fits — the modulo bucket mapping means nothing moves — or,
    // in the degenerate wide-span case, spill the window into the overflow
    // heap and migrate back what fits around the new base.
    if (span_max_ - when < kWindowSize) {
      base_ = when;
      scan_offset_ = 0;
    } else {
      demote_window();
      base_ = when;
      span_max_ = when;
      migrate_overflow();
      head_in_window_ = head_when_ - base_ < kWindowSize;
    }
  }

  const std::uint64_t seq = ++seq_counter_;
  const std::uint32_t slot = acquire_slot(when, std::move(fn));
  const std::uint32_t gen = slots_[slot].gen;
  if (when - base_ < kWindowSize) {
    Bucket& b = bucket_of(when);
    b.items.push_back(Entry{seq, slot, gen});
    set_occupied(when);
    ++window_live_;
    span_max_ = std::max(span_max_, when);
    if (live_ == 0 || when < head_when_) {
      head_when_ = when;
      head_in_window_ = true;
      scan_offset_ = when - base_;
    }
  } else {
    overflow_push(OverflowEntry{when, seq, slot, gen});
    ++overflow_live_;
    if (live_ == 0 || when < head_when_) {
      head_when_ = when;
      head_in_window_ = false;
    }
  }
  ++live_;
  return (static_cast<EventId>(gen) << 32) |
         static_cast<EventId>(slot + 1);
}

bool EventQueue::cancel(EventId id) {
  const std::uint64_t low = id & 0xffffffffULL;
  if (low == 0) return false;
  const auto slot = static_cast<std::uint32_t>(low - 1);
  if (slot >= slots_.size()) return false;
  Slot& s = slots_[slot];
  if (!s.fn || s.gen != static_cast<std::uint32_t>(id >> 32)) return false;
  const std::int64_t when = s.when;
  free_slot(slot);
  --live_;
  assert(when >= base_);
  if (when - base_ < kWindowSize) {
    ++window_dead_;
    --window_live_;
  } else {
    ++overflow_dead_;
    --overflow_live_;
  }
  if (live_ > 0 && when == head_when_) {
    restore_head();  // the head bucket may still hold later-seq live events
  }
  maybe_compact();
  return true;
}

SimTime EventQueue::next_time() const {
  assert(live_ > 0);
  return SimTime(head_when_);
}

SimTime EventQueue::run_next(SimTime* clock) {
  assert(live_ > 0 && "run_next on empty queue");
  if (!head_in_window_) rotate_window();
  Bucket& b = bucket_of(head_when_);
  assert(b.head < b.items.size());
  const Entry e = b.items[b.head++];
  assert(entry_live(e.slot, e.gen) && "head invariant violated");
  EventFn fn = std::move(slots_[e.slot].fn);
  free_slot(e.slot);
  --live_;
  --window_live_;
  const SimTime when{head_when_};
  if (b.head == b.items.size()) {
    b.items.clear();
    b.head = 0;
    clear_occupied(head_when_);
  }
  if (clock != nullptr) *clock = when;
  // Re-establish the head *before* running: the callback may schedule new
  // events, and schedule() compares against the head. The base does not
  // move here, so a callback scheduling at the just-popped time (== now)
  // still lands in the window.
  if (live_ > 0) restore_head();
  fn();
  return when;
}

}  // namespace splice::sim
