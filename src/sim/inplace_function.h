// Small-buffer-optimized, move-only callable for the simulator hot path.
//
// Every scheduled event used to cost one std::function, whose libstdc++
// inline buffer (16 bytes) is too small for anything capturing more than a
// couple of pointers — so nearly every schedule() heap-allocated. EventFn
// stores captures up to kInlineCapacity bytes in place; larger (or
// throwing-move) callables fall back to a single heap cell, counted so the
// benches can report the fallback rate. Move-only on purpose: envelopes and
// other message state are moved, never copied, into callbacks.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace splice::sim {

class EventFn {
 public:
  /// Captures up to this many bytes live inside the EventFn itself.
  static constexpr std::size_t kInlineCapacity = 48;

  EventFn() noexcept = default;
  EventFn(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventFn(F&& fn) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>) {
      ::new (static_cast<void*>(buffer_)) Fn(std::forward<F>(fn));
      ops_ = &inline_ops<Fn>;
    } else {
      ::new (static_cast<void*>(buffer_)) Fn*(new Fn(std::forward<F>(fn)));
      ops_ = &heap_ops<Fn>;
      heap_fallbacks_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  EventFn(EventFn&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(buffer_, other.buffer_);
      other.ops_ = nullptr;
    }
  }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(buffer_, other.buffer_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  EventFn& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { reset(); }

  void operator()() {
    ops_->call(buffer_);
  }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  /// Lifetime count of callables too large (or not nothrow-movable) for the
  /// inline buffer; the micro benches report this as a regression signal.
  [[nodiscard]] static std::uint64_t heap_fallbacks() noexcept {
    return heap_fallbacks_.load(std::memory_order_relaxed);
  }

 private:
  struct Ops {
    void (*call)(std::byte* storage);
    // Move-construct into dst from src, then destroy src's callable.
    void (*relocate)(std::byte* dst, std::byte* src) noexcept;
    void (*destroy)(std::byte* storage) noexcept;
  };

  template <typename Fn>
  static constexpr bool fits_inline =
      sizeof(Fn) <= kInlineCapacity &&
      alignof(Fn) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<Fn>;

  template <typename Fn>
  static constexpr Ops inline_ops = {
      [](std::byte* s) { (*std::launder(reinterpret_cast<Fn*>(s)))(); },
      [](std::byte* dst, std::byte* src) noexcept {
        Fn* from = std::launder(reinterpret_cast<Fn*>(src));
        ::new (static_cast<void*>(dst)) Fn(std::move(*from));
        from->~Fn();
      },
      [](std::byte* s) noexcept {
        std::launder(reinterpret_cast<Fn*>(s))->~Fn();
      },
  };

  template <typename Fn>
  static constexpr Ops heap_ops = {
      [](std::byte* s) { (**std::launder(reinterpret_cast<Fn**>(s)))(); },
      [](std::byte* dst, std::byte* src) noexcept {
        ::new (static_cast<void*>(dst))
            Fn*(*std::launder(reinterpret_cast<Fn**>(src)));
      },
      [](std::byte* s) noexcept {
        delete *std::launder(reinterpret_cast<Fn**>(s));
      },
  };

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buffer_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte buffer_[kInlineCapacity];
  const Ops* ops_ = nullptr;

  inline static std::atomic<std::uint64_t> heap_fallbacks_{0};
};

}  // namespace splice::sim
