// The simulation driver: owns the clock and the event queue.
//
// Components schedule work via after()/at(); run_until() drives the loop.
// Everything is single-threaded and deterministic for a given seed.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/event_queue.h"
#include "sim/time.h"

namespace splice::sim {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedule at an absolute time (must be >= now()).
  EventId at(SimTime when, EventFn fn);

  /// Schedule `delay` ticks from now.
  EventId after(SimTime delay, EventFn fn);

  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Run until the queue drains or the clock passes `deadline`.
  /// Returns true if the queue drained (normal completion).
  bool run_until(SimTime deadline = SimTime::max());

  /// Run at most `max_events` events; returns events actually run.
  std::uint64_t run_steps(std::uint64_t max_events);

  /// Advance the clock to `t` without running anything, clamped so it never
  /// jumps past the next pending event. Used by real-time drivers (TCP
  /// multi-process mode) to pace simulated time against the wall clock
  /// between poll() rounds: run_until(deadline) leaves now() at the last
  /// event executed, not at the deadline.
  void advance_to(SimTime t) noexcept;

  /// Time of the earliest pending event; SimTime::max() when idle. The PDES
  /// window driver peeks this to decide whether the next event is inside the
  /// current time window.
  [[nodiscard]] SimTime next_event_time() const noexcept {
    return queue_.empty() ? SimTime::max() : queue_.next_time();
  }

  /// Pop and run exactly one event (precondition: !idle()). The PDES window
  /// driver interleaves sim events with shard-op execution at matching
  /// timestamps, so it needs single-step granularity run_until can't give.
  void run_one() {
    queue_.run_next(&now_);
    ++events_executed_;
  }

  [[nodiscard]] bool idle() const noexcept { return queue_.empty(); }
  [[nodiscard]] std::uint64_t events_executed() const noexcept {
    return events_executed_;
  }
  /// Live (uncancelled, unfired) events — the queue-depth gauge the
  /// flight recorder's metrics sampler reads.
  [[nodiscard]] std::size_t pending_events() const noexcept {
    return queue_.pending();
  }

  /// Hard stop: request run_until to return after the current event.
  void request_stop() noexcept { stop_requested_ = true; }

 private:
  EventQueue queue_;
  SimTime now_;
  std::uint64_t events_executed_ = 0;
  bool stop_requested_ = false;
};

}  // namespace splice::sim
