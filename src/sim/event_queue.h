// Discrete-event queue: two-tier ladder (calendar) structure.
//
// Events at equal times fire in insertion order (a monotone sequence number
// breaks ties), which is what makes whole-system replay deterministic. The
// pop order is exactly lexicographic (time, sequence) — identical to the
// binary-heap implementation this replaced; tests/event_queue_ladder_test.cpp
// drives both against each other on randomized schedules to prove it.
//
// Structure:
//  * a near-future window of kWindowSize one-tick buckets covering
//    [base, base + kWindowSize): schedule and pop are O(1) amortized, and
//    FIFO-within-timestamp is free because a bucket is a single timestamp
//    and entries only ever append;
//  * a sorted overflow tier (binary min-heap over (time, seq)) for events
//    beyond the window. When the window drains, the next pop re-anchors the
//    window at the earliest overflow event and migrates everything that now
//    fits — overflow pops arrive sorted, so bucket order stays FIFO.
//
// Callbacks live in a slot table recycled through a free list: a slot is
// reclaimed the moment its event fires or is cancelled, so callback memory
// is bounded by *live* events, not by the total ever scheduled (the old
// side table grew monotonically). A generation counter per slot makes stale
// EventIds harmless and lets cancelled queue entries be skipped lazily;
// when more than half the queued entries are dead they are compacted away.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/inplace_function.h"
#include "sim/time.h"

namespace splice::sim {

/// Handle for cancelling a scheduled event. Encodes (slot, generation); a
/// handle outlives its event harmlessly — cancel on a fired/cancelled id is
/// a no-op because the slot's generation has moved on.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class EventQueue {
 public:
  /// Width of the near-future window in ticks (one bucket per tick).
  static constexpr std::int64_t kWindowSize = 4096;

  /// Schedule fn at absolute time `when`. Returns a cancellable id.
  EventId schedule(SimTime when, EventFn fn);

  /// Cancel a pending event; cancelling an already-fired or invalid id is a
  /// harmless no-op. Returns true if the event was still pending. The
  /// callback (and its captures) are destroyed immediately and the slot is
  /// recycled; only a 16/24-byte tombstone entry stays queued, and even
  /// those are compacted once they outnumber live entries.
  bool cancel(EventId id);

  [[nodiscard]] bool empty() const noexcept { return live_ == 0; }
  [[nodiscard]] std::size_t pending() const noexcept { return live_; }
  /// Earliest *live* event time. Requires !empty().
  [[nodiscard]] SimTime next_time() const;

  /// Pop and run the earliest event. Requires !empty().
  /// `clock`, when non-null, is set to the event's time *before* the
  /// callback runs, so the callback observes the advanced clock.
  /// Returns the time the event fired at.
  SimTime run_next(SimTime* clock = nullptr);

  [[nodiscard]] std::uint64_t total_scheduled() const noexcept {
    return seq_counter_;
  }

  // ---- introspection for benches/tests -------------------------------------
  /// Callback slots currently allocated (bounded by peak live events).
  [[nodiscard]] std::size_t slot_capacity() const noexcept {
    return slots_.size();
  }
  /// Cancelled entries still queued as tombstones.
  [[nodiscard]] std::size_t dead_entries() const noexcept {
    return window_dead_ + overflow_dead_;
  }
  /// Times the tombstone compactor ran.
  [[nodiscard]] std::uint64_t compactions() const noexcept {
    return compactions_;
  }

 private:
  struct Entry {          // window tier: `when` is implied by the bucket
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
  };
  struct OverflowEntry {  // overflow tier: explicit time
    std::int64_t when;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
  };
  struct Bucket {
    std::vector<Entry> items;
    std::size_t head = 0;  // consumed prefix (popped or discarded tombstones)
  };
  struct Slot {
    EventFn fn;
    std::int64_t when = 0;
    std::uint32_t gen = 1;
  };

  [[nodiscard]] bool entry_live(std::uint32_t slot,
                                std::uint32_t gen) const noexcept {
    return slots_[slot].gen == gen;
  }
  [[nodiscard]] Bucket& bucket_of(std::int64_t when) noexcept {
    return buckets_[static_cast<std::size_t>(when) & (kWindowSize - 1)];
  }

  std::uint32_t acquire_slot(std::int64_t when, EventFn fn);
  void free_slot(std::uint32_t slot) noexcept;

  void overflow_push(OverflowEntry entry);
  void overflow_pop_top() noexcept;
  void overflow_drop_dead_tops() noexcept;

  /// Re-establish the head invariant after a pop or a head cancellation:
  /// discard tombstones at bucket fronts, clear drained buckets, fall back
  /// to the overflow top. Never moves the window base.
  void restore_head();
  /// Pop every live overflow entry that fits the current window into its
  /// bucket; pops arrive (when, seq)-sorted so FIFO order is preserved.
  void migrate_overflow();
  /// Re-anchor the window at the overflow head and migrate everything that
  /// fits. Only called from run_next, when the fire time becomes "now" —
  /// so the base never advances past a time that could still be scheduled.
  void rotate_window();
  /// Move every queued window entry to the overflow tier (rare: schedule
  /// below the window base while the window spans too much to just slide).
  void demote_window();
  /// live_ == 0: drop any remaining tombstones so the window can re-anchor.
  void purge_all_dead() noexcept;
  void maybe_compact();

  void set_occupied(std::int64_t when) noexcept;
  void clear_occupied(std::int64_t when) noexcept;
  /// First occupied bucket at window offset >= `from_offset`, scanning in
  /// time order (cyclic over the bucket array). Returns kWindowSize if none.
  [[nodiscard]] std::int64_t next_occupied_offset(
      std::int64_t from_offset) const noexcept;

  std::vector<Bucket> buckets_{static_cast<std::size_t>(kWindowSize)};
  std::vector<std::uint64_t> occupied_ =
      std::vector<std::uint64_t>(static_cast<std::size_t>(kWindowSize / 64), 0);
  std::vector<OverflowEntry> overflow_;  // binary min-heap over (when, seq)

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;

  std::int64_t base_ = 0;          // window covers [base_, base_ + kWindowSize)
  std::int64_t scan_offset_ = 0;   // buckets below this offset are drained
  std::int64_t span_max_ = 0;      // max `when` currently in the window
  std::int64_t head_when_ = 0;     // earliest live event (valid iff live_ > 0)
  bool head_in_window_ = false;

  std::size_t live_ = 0;
  std::size_t window_live_ = 0;
  std::size_t overflow_live_ = 0;
  std::size_t window_dead_ = 0;
  std::size_t overflow_dead_ = 0;
  std::uint64_t seq_counter_ = 0;
  std::uint64_t compactions_ = 0;
};

}  // namespace splice::sim
