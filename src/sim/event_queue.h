// Discrete-event priority queue.
//
// Events at equal times fire in insertion order (a monotone sequence number
// breaks ties), which is what makes whole-system replay deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.h"

namespace splice::sim {

using EventFn = std::function<void()>;

/// Handle for cancelling a scheduled event. Cancellation is lazy: the slot
/// stays queued but fires as a no-op.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class EventQueue {
 public:
  /// Schedule fn at absolute time `when`. Returns a cancellable id.
  EventId schedule(SimTime when, EventFn fn);

  /// Cancel a pending event; cancelling an already-fired or invalid id is a
  /// harmless no-op. Returns true if the event was still pending.
  bool cancel(EventId id);

  [[nodiscard]] bool empty() const noexcept;
  [[nodiscard]] std::size_t pending() const noexcept { return live_; }
  [[nodiscard]] SimTime next_time() const;

  /// Pop and run the earliest event. Requires !empty().
  /// `clock`, when non-null, is set to the event's time *before* the
  /// callback runs, so the callback observes the advanced clock.
  /// Returns the time the event fired at.
  SimTime run_next(SimTime* clock = nullptr);

  [[nodiscard]] std::uint64_t total_scheduled() const noexcept {
    return next_id_ - 1;
  }

 private:
  struct Entry {
    SimTime when;
    EventId id = kInvalidEvent;
    // Heap entries own their callbacks through a side table so cancel() can
    // drop the callable immediately (breaking reference cycles).
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.id > b.id;  // FIFO among equal-time events
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::vector<EventFn> callbacks_;   // indexed by id; empty fn == cancelled
  std::uint64_t next_id_ = 1;
  std::size_t live_ = 0;
};

}  // namespace splice::sim
