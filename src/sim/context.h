// Execution context for the sharded (PDES) driver.
//
// The classic single-threaded path has exactly one Simulator, so components
// hold a `Simulator&` and call now()/after() on it directly. The PDES engine
// (runtime/pdes_engine.h) runs one Simulator per shard plus a coordinator
// Simulator, and the *same* component code must transparently talk to
// whichever one drives the calling thread's current phase. This header is
// that indirection: a thread-local override the engine installs around each
// worker window / shard op, consulted via ctx() with the classic simulator
// as the fallback.
//
// Cost when the engine is not running: one thread-local pointer read and a
// predictable branch — nothing on the classic path changes behaviour.
#pragma once

#include <cstdint>

#include "sim/simulator.h"

namespace splice::sim {

/// Shard index reported by ctx_shard() while no override is installed (the
/// classic path, and the PDES coordinator phase which shares index 0 slots
/// only where explicitly stated).
inline constexpr std::uint32_t kNoShard = 0xffffffffU;

namespace detail {
struct ThreadContext {
  Simulator* sim = nullptr;
  std::uint32_t shard = kNoShard;
};
inline ThreadContext& tls() noexcept {
  thread_local ThreadContext context;
  return context;
}
}  // namespace detail

/// The simulator driving the calling thread right now: the engine-installed
/// override if one is active, else `fallback` (the classic simulator — or
/// the coordinator simulator, which is what the engine passes through).
[[nodiscard]] inline Simulator& ctx(Simulator& fallback) noexcept {
  Simulator* over = detail::tls().sim;
  return over != nullptr ? *over : fallback;
}

/// The calling thread's shard index, or kNoShard outside a worker window.
[[nodiscard]] inline std::uint32_t ctx_shard() noexcept {
  return detail::tls().shard;
}

/// RAII override installer. The engine scopes one of these around each
/// worker window, shard-op execution and the sharded setup walk; nesting
/// restores the previous override on destruction.
class ScopedContext {
 public:
  ScopedContext(Simulator* sim, std::uint32_t shard) noexcept
      : saved_(detail::tls()) {
    detail::tls() = detail::ThreadContext{sim, shard};
  }
  ~ScopedContext() { detail::tls() = saved_; }
  ScopedContext(const ScopedContext&) = delete;
  ScopedContext& operator=(const ScopedContext&) = delete;

 private:
  detail::ThreadContext saved_;
};

}  // namespace splice::sim
