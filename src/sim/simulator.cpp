#include "sim/simulator.h"

#include <cassert>

namespace splice::sim {

EventId Simulator::at(SimTime when, EventFn fn) {
  assert(when >= now_ && "cannot schedule into the past");
  return queue_.schedule(when, std::move(fn));
}

EventId Simulator::after(SimTime delay, EventFn fn) {
  assert(delay.ticks() >= 0);
  return queue_.schedule(now_ + delay, std::move(fn));
}

bool Simulator::run_until(SimTime deadline) {
  stop_requested_ = false;
  while (!queue_.empty()) {
    if (queue_.next_time() > deadline) return false;
    queue_.run_next(&now_);
    ++events_executed_;
    if (stop_requested_) return false;
  }
  return true;
}

void Simulator::advance_to(SimTime t) noexcept {
  if (!queue_.empty() && queue_.next_time() < t) t = queue_.next_time();
  if (t > now_) now_ = t;
}

std::uint64_t Simulator::run_steps(std::uint64_t max_events) {
  std::uint64_t ran = 0;
  while (ran < max_events && !queue_.empty()) {
    queue_.run_next(&now_);
    ++events_executed_;
    ++ran;
  }
  return ran;
}

}  // namespace splice::sim
