// Simulated time.
//
// Time is an integer tick count (strong typedef) so event ordering is exact
// and replay is bit-identical; one tick nominally models one microsecond of
// 1986-era hardware, but all results are reported in relative units.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace splice::sim {

class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(std::int64_t ticks) noexcept : ticks_(ticks) {}

  [[nodiscard]] constexpr std::int64_t ticks() const noexcept {
    return ticks_;
  }
  [[nodiscard]] constexpr double seconds() const noexcept {
    return static_cast<double>(ticks_) * 1e-6;
  }

  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime operator+(SimTime rhs) const noexcept {
    return SimTime(ticks_ + rhs.ticks_);
  }
  constexpr SimTime operator-(SimTime rhs) const noexcept {
    return SimTime(ticks_ - rhs.ticks_);
  }
  constexpr SimTime& operator+=(SimTime rhs) noexcept {
    ticks_ += rhs.ticks_;
    return *this;
  }

  [[nodiscard]] static constexpr SimTime zero() noexcept { return SimTime(0); }
  [[nodiscard]] static constexpr SimTime max() noexcept {
    return SimTime(INT64_MAX);
  }

  [[nodiscard]] std::string to_string() const {
    return std::to_string(ticks_);
  }

 private:
  std::int64_t ticks_ = 0;
};

constexpr SimTime operator*(SimTime t, std::int64_t k) noexcept {
  return SimTime(t.ticks() * k);
}

}  // namespace splice::sim
