#include "runtime/runtime.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <memory>
#include <unordered_map>
#include <utility>

#include "recovery/rollback.h"
#include "util/logging.h"

namespace splice::runtime {

Runtime::Runtime(sim::Simulator& sim, net::Network& network,
                 const core::SystemConfig& config,
                 const lang::Program& program)
    : sim_(sim),
      network_(network),
      config_(config),
      program_(program),
      hosts_super_root_(network.is_local(0)),
      detection_noted_(config.processors, false) {
  // The recorder is the single write path for observability: an explicit
  // obs.recorder opt-in journals typed events, and collect_trace (the
  // legacy human-readable trace) additionally keeps rendered detail
  // strings — the Trace accessor materialises its view from this journal.
  recorder_.configure(config_.obs.recorder || config_.collect_trace,
                      config_.obs.journal_capacity, config_.collect_trace);
  recorder_.set_processors(config_.processors);
  scheduler_ = sched::make_scheduler(config_.scheduler);
  policy_ = recovery::make_policy(config_.recovery);

  procs_.reserve(config_.processors);
  for (net::ProcId p = 0; p < config_.processors; ++p) {
    procs_.push_back(std::make_unique<Processor>(*this, p));
    network_.set_receiver(p, [this, p](net::Envelope&& env) {
      procs_[p]->handle(std::move(env));
    });
  }

  attach_scheduler();

  checkpoint::SuperRoot::Env sr;
  sr.spawn = [this](TaskPacket packet) {
    return spawn_root_packet(std::move(packet));
  };
  sr.relay = [this](ResultMsg msg) { host_send_result(std::move(msg)); };
  sr.on_stranded = [this] { ++stranded_from_host_; };
  sr.recorder = &recorder_;
  sr.quorum = quorum_for(0);
  sr.replicas = replication_for(0);
  // Root respawn is itself a recovery action: the no-recovery control arm
  // must not get it, and periodic-global restores the root from its own
  // snapshots instead.
  sr.recover_root = config_.super_root &&
                    config_.recovery.kind != core::RecoveryKind::kNone &&
                    config_.recovery.kind !=
                        core::RecoveryKind::kPeriodicGlobal;
  super_root_ = std::make_unique<checkpoint::SuperRoot>(std::move(sr));

  policy_->attach(*this);
}

Runtime::~Runtime() = default;

void Runtime::attach_scheduler() {
  sched::SchedulerEnv env;
  env.topology = &network_.topology();
  env.program = &program_;
  env.alive = [this](net::ProcId p) { return network_.alive(p); };
  // A processor never spawns toward a peer it has itself declared dead:
  // its reissue obligation against that peer is already discharged, so a
  // checkpoint recorded there afterwards would never be taken — the slot
  // would be unrecoverable. (Partitions make this reachable: the far side
  // is globally alive yet locally suspected.)
  env.suspected = [this](net::ProcId origin, net::ProcId p) {
    return origin < procs_.size() && procs_[origin]->knows_dead(p);
  };
  if (engine_ != nullptr) {
    // A worker must not read another shard's live queue; the engine
    // publishes a load snapshot at every window barrier. Staleness of at
    // most one window is the same imperfect-information regime the
    // schedulers already operate in between gradient refreshes.
    env.queue_length = [this](net::ProcId p) { return engine_->load_of(p); };
    env.sharded = true;
  } else {
    env.queue_length = [this](net::ProcId p) {
      return procs_[p]->queue_length();
    };
  }
  if (config_.replication.enabled() && config_.replication.zoned) {
    // Replica-lane confinement: zone z tasks live on processors p with
    // p % factor == z, so one crash damages at most one lane (§5.3/§5.4).
    env.eligible = [this](net::ProcId p, const TaskPacket& packet) {
      if (packet.zone < 0) return true;
      return static_cast<std::int32_t>(p % config_.replication.factor) ==
             packet.zone % static_cast<std::int32_t>(
                               config_.replication.factor);
    };
  }
  env.seed = config_.seed;
  scheduler_->attach(env);
}

void Runtime::set_engine(EngineHooks* engine) {
  engine_ = engine;
  uid_stream_next_.assign(procs_.size(), 0);
  for (net::ProcId p = 0; p < procs_.size(); ++p) {
    uid_stream_next_[p] = checkpoint::SuperRoot::kSuperRootUid + 1 + p;
  }
  // Per-origin scheduler streams replace the shared classic streams.
  attach_scheduler();
}

void Runtime::start() {
  // Multi-process group: only the OS process hosting rank 0 owns the
  // super-root (and therefore injects the root program); every process
  // arms heartbeats for the ranks it actually hosts. Under a
  // single-process transport every rank is local, so this is the same
  // full bring-up as always.
  if (hosts_super_root_) {
    TaskPacket root;
    root.stamp = LevelStamp::root();
    root.fn = program_.entry();
    root.args = TaskPacket::Args(program_.entry_args().begin(),
                                 program_.entry_args().end());
    root.call_site = lang::kNoExpr;
    root.ancestors.push_back(super_root_->ref());
    super_root_->start(std::move(root));
  }

  for (auto& proc : procs_) {
    if (!network_.is_local(proc->id())) continue;
    if (engine_ != nullptr) {
      // Heartbeat timers live on the owning shard's simulator; workers are
      // not running yet, so installing the context here is safe.
      Processor* raw = proc.get();
      engine_->with_shard_of(raw->id(), [raw] { raw->start_heartbeats(); });
    } else {
      proc->start_heartbeats();
    }
  }
  if (engine_ != nullptr &&
      config_.scheduler.kind == core::SchedulerKind::kGradient) {
    // Prime the gradient field before any worker calls choose(): the lazy
    // first refresh mutates shared state and must stay off worker threads.
    scheduler_messages_ += scheduler_->on_tick(sim::SimTime(0));
  }
  schedule_scheduler_tick();
  schedule_gc_tick();
  schedule_obs_sample();
}

core::Trace& Runtime::trace() {
  // Rebuild the rendering view when the journal advanced. With the
  // recorder off both counts are 0 after the first call, so this stays a
  // cheap comparison.
  if (trace_materialized_ != recorder_.total_recorded()) {
    trace_ = core::Trace(true);
    recorder_.for_each([this](const obs::Event& event,
                              const std::string& detail) {
      trace_.add(sim::SimTime(event.ticks), event.proc,
                 std::string(obs::to_string(event.kind)), detail);
    });
    trace_.set_enabled(recorder_.enabled());
    trace_materialized_ = recorder_.total_recorded();
  }
  return trace_;
}

void Runtime::schedule_obs_sample() {
  if (!recorder_.enabled() || config_.obs.sample_interval <= 0) return;
  sim_.after(sim::SimTime(config_.obs.sample_interval), [this] {
    if (engine_ != nullptr) {
      // The engine's shard rings are merged (and the metrics rebuilt) after
      // the run; live samples are stored with the engine and interleaved at
      // replay so the gauge series is identical across shard counts. The
      // gauge itself sums the same logical event set regardless of K:
      // coordinator queue + shard queues + staged ops.
      engine_->note_gauge_sample(
          sim_.now(), sim_.pending_events() + engine_->shard_pending(),
          network_.in_flight(), checkpoint_resident_now());
    } else {
      recorder_.metrics().sample(sim_.now().ticks(), sim_.pending_events(),
                                 network_.in_flight(),
                                 checkpoint_resident_now());
    }
    // The window closing at (or after) completion is the last one; without
    // this stop the rearming tick would keep the event queue alive until
    // the deadline.
    if (done_) return;
    schedule_obs_sample();
  });
}

std::uint64_t Runtime::checkpoint_resident_now() const {
  std::uint64_t resident = 0;
  for (const auto& proc : procs_) {
    if (!proc->crashed()) resident += proc->table().total_records();
  }
  return resident;
}

net::ProcId Runtime::spawn_root_packet(TaskPacket packet) {
  if (config_.replication.enabled() && config_.replication.zoned &&
      replication_for(0) > 1) {
    packet.zone = static_cast<std::int32_t>(packet.replica);
  }
  // The host channel is a direct call into the destination processor; in a
  // multi-process group that is only possible on a rank this process hosts,
  // so the root is pinned to rank 0 (whose process is the one injecting).
  const net::ProcId dest =
      network_.distributed() ? 0 : scheduler_->choose(0, packet);
  if (dest == net::kNoProc) return net::kNoProc;
  ++host_messages_;
  recorder_.record(sim_.now(), obs::EventKind::kInjectRoot,
                   {.peer = dest, .arg = packet.replica}, [&] {
                     return "replica " + std::to_string(packet.replica) +
                            " -> P" + std::to_string(dest);
                   });
  sim_.after(sim::SimTime(config_.latency.base),
             [this, dest, packet = std::move(packet)]() mutable {
               if (!network_.alive(dest)) {
                 // The host link observes the crash immediately and lets the
                 // super-root place the root elsewhere.
                 super_root_->on_processor_dead(dest);
                 return;
               }
               if (engine_ != nullptr) {
                 // Accepting records/sends/schedules on dest — run it on
                 // dest's shard at the next window start. A kill ordered
                 // after this post at the same barrier can still land first,
                 // so the shard op re-checks and bounces to the super-root
                 // through the host channel (coordinator context).
                 engine_->post_shard(
                     dest, [this, dest, packet = std::move(packet)]() mutable {
                       if (procs_[dest]->crashed()) {
                         engine_->post_host(dest, [this, dest] {
                           super_root_->on_processor_dead(dest);
                         });
                         return;
                       }
                       procs_[dest]->accept_packet(std::move(packet));
                     });
                 return;
               }
               procs_[dest]->accept_packet(std::move(packet));
             });
  return dest;
}

void Runtime::deliver_to_super_root(ResultMsg msg, net::ProcId acting) {
  if (in_shard_context()) {
    // Re-enter on the coordinator at the next barrier; the replay executes
    // at the posting time, so the base-latency leg below is unchanged.
    engine_->post_host(acting,
                       [this, msg = std::move(msg), acting]() mutable {
                         deliver_to_super_root(std::move(msg), acting);
                       });
    return;
  }
  ++host_messages_;
  sim_.after(sim::SimTime(config_.latency.base),
             [this, msg = std::move(msg)]() mutable {
               const bool was_done = super_root_->done();
               super_root_->on_result(std::move(msg));
               if (!was_done && super_root_->done()) {
                 done_ = true;
                 completion_time_ = sim_.now();
                 recorder_.record(sim_.now(), obs::EventKind::kDone, {}, [&] {
                   return super_root_->answer().to_string();
                 });
               }
             });
}

void Runtime::super_root_ack(AckMsg msg, net::ProcId acting) {
  if (in_shard_context()) {
    engine_->post_host(acting, [this, msg, acting] {
      super_root_ack(msg, acting);
    });
    return;
  }
  ++host_messages_;
  sim_.after(sim::SimTime(config_.latency.base),
             [this, msg] { super_root_->on_ack(msg); });
}

void Runtime::host_send_result(ResultMsg msg) {
  assert(!in_shard_context() &&
         "host_send_result is a coordinator-context channel");
  ++host_messages_;
  sim_.after(sim::SimTime(config_.latency.base),
             [this, msg = std::move(msg)]() mutable {
               const net::ProcId dest = msg.target.proc;
               if (dest == net::kNoProc || !network_.alive(dest)) {
                 ++stranded_from_host_;
                 return;
               }
               net::Envelope env;
               env.kind = net::MsgKind::kForwardResult;
               env.from = dest;  // host channel surfaces at the destination
               env.to = dest;
               env.size_units = msg.size_units();
               env.payload = std::move(msg);
               if (engine_ != nullptr) {
                 // handle() records/sends on dest — shard-op it, with the
                 // same late-crash re-check as the root inject leg.
                 auto shared = std::make_shared<net::Envelope>(std::move(env));
                 engine_->post_shard(dest, [this, dest, shared] {
                   if (procs_[dest]->crashed()) {
                     engine_->post_host(dest, [this] { ++stranded_from_host_; });
                     return;
                   }
                   procs_[dest]->handle(std::move(*shared));
                 });
                 return;
               }
               procs_[dest]->handle(std::move(env));
             });
}

void Runtime::note_detection(net::ProcId dead, net::ProcId detector) {
  if (in_shard_context()) {
    // Once-per-death bookkeeping touches coordinator-owned state
    // (detection_noted_, super-root, global policy hooks); replay at the
    // barrier. The dedup below makes concurrent detections idempotent.
    engine_->post_host(detector, [this, dead, detector] {
      note_detection(dead, detector);
    });
    return;
  }
  if (dead >= detection_noted_.size() || detection_noted_[dead]) return;
  detection_noted_[dead] = true;
  if (first_detection_ticks_ < 0) first_detection_ticks_ = sim_.now().ticks();
  if (hosts_super_root_) super_root_->on_processor_dead(dead);
  policy_->on_global_failure(*this, dead);
}

void Runtime::on_kill(net::ProcId dead) {
  procs_.at(dead)->nuke();
  recorder_.record(sim_.now(), obs::EventKind::kCrash, {.proc = dead},
                   [] { return std::string("processor failed (fail-silent)"); });
}

void Runtime::on_revive(net::ProcId back) {
  const bool undetected =
      back < detection_noted_.size() && !detection_noted_[back];
  // Re-arm once-per-death bookkeeping: if the node dies again after this
  // rejoin, detection and the global policy hooks must fire again.
  if (back < detection_noted_.size()) detection_noted_[back] = false;
  if (engine_ != nullptr) {
    // revive() sends rejoin notices and re-arms timers — it must run on the
    // node's own shard. The network-level revive already happened (the
    // injector flips liveness before this callback), so peers' sends toward
    // `back` deliver from the next window on either path.
    engine_->post_shard(back, [this, back] { procs_.at(back)->revive(); });
  } else {
    procs_.at(back)->revive();
  }
  recorder_.record(sim_.now(), obs::EventKind::kRevive, {.proc = back}, [&] {
    return std::string(warm_rejoin_ ? "processor repaired (warm)"
                                    : "processor repaired (blank)");
  });
  if (undetected) {
    // The repair completed before anyone observed the death (stale bounce
    // notices are suppressed once the node is alive again), but the
    // volatile state is gone all the same — fire the global once-per-death
    // hooks the detection path would have fired.
    if (hosts_super_root_) super_root_->on_processor_dead(back);
    policy_->on_global_failure(*this, back);
  }
  policy_->on_rejoin(*this, back);
}

void Runtime::on_partition_heal(const std::vector<net::ProcId>& side) {
  if (done_) return;
  std::vector<bool> in_side(procs_.size(), false);
  for (net::ProcId p : side) {
    if (p < procs_.size()) in_side[p] = true;
  }
  for (net::ProcId q = 0; q < procs_.size(); ++q) {
    if (!network_.alive(q)) continue;
    bool suspected = false;
    for (net::ProcId p = 0; p < procs_.size(); ++p) {
      // Only cross-cut suspicion is the cut's doing; same-side verdicts
      // (and verdicts about genuinely dead nodes) stand.
      if (p == q || in_side[p] == in_side[q] || procs_[p]->crashed()) continue;
      if (!procs_[p]->knows_dead(q)) continue;
      suspected = true;
      if (engine_ != nullptr) {
        // learn_alive sends a state request from p — p's shard runs it.
        engine_->post_shard(p, [this, p, q] {
          if (!procs_[p]->crashed()) procs_[p]->learn_alive(q);
        });
      } else {
        procs_[p]->learn_alive(q);
      }
    }
    if (suspected && q < detection_noted_.size()) {
      // The false detection consumed the once-per-death bookkeeping; re-arm
      // it so a real future death of q is detected and handled again.
      detection_noted_[q] = false;
    }
  }
}

bool Runtime::defer_reissue(Processor& proc, net::ProcId dead) {
  if (!warm_rejoin_) return false;
  // Observers with no stake in the dead node (every live processor hears
  // every death broadcast) take the immediate path: the cold action is a
  // no-op for them, and a 128-node machine must not schedule a grace timer
  // per observer per death.
  if (!proc.has_stake_in(dead)) return false;
  ++proc.counters().reissues_deferred;
  // Context-aware clock/recorder/timer: on the engine path this runs on the
  // holder's shard thread, and the grace timer belongs on that same shard.
  recorder().record(sim().now(), obs::EventKind::kDefer,
                    {.proc = proc.id(), .peer = dead}, [&] {
                      return "reissue against P" + std::to_string(dead) +
                             " (warm rejoin)";
                    });
  const net::ProcId holder = proc.id();
  sim().after(sim::SimTime(config_.store.warm_grace), [this, holder, dead] {
    if (done_) return;
    if (network_.alive(dead)) return;  // rejoined: state transfer covered it
    Processor& p = *procs_.at(holder);
    if (p.crashed()) return;  // the holder died meanwhile; its own recovery
                              // (or its peers') regrows the branch
    recorder().record(sim().now(), obs::EventKind::kGraceExpired,
                      {.proc = holder, .peer = dead}, [&] {
                        return "cold reissue against P" + std::to_string(dead);
                      });
    policy_->reissue_against(p, dead);
  });
  return true;
}

std::uint32_t Runtime::replication_for(std::size_t depth) const noexcept {
  const auto& repl = config_.replication;
  if (!repl.enabled()) return 1;
  return depth < repl.max_depth ? repl.factor : 1;
}

std::uint32_t Runtime::quorum_for(std::size_t depth) const noexcept {
  const auto& repl = config_.replication;
  if (!repl.enabled() || depth >= repl.max_depth) return 1;
  return repl.quorum();
}

void Runtime::schedule_scheduler_tick() {
  if (config_.scheduler.kind != core::SchedulerKind::kGradient) return;
  const std::int64_t period = config_.scheduler.gradient_refresh;
  if (period <= 0) return;
  sim_.after(sim::SimTime(period), [this] {
    if (done_) return;
    scheduler_messages_ += scheduler_->on_tick(sim_.now());
    schedule_scheduler_tick();
  });
}

void Runtime::schedule_gc_tick() {
  if (config_.reclaim.gc_interval <= 0) return;
  // The sweep reads global simulator state; a multi-process group has no
  // omniscient observer (that is rather the point).
  if (network_.distributed()) return;
  sim_.after(sim::SimTime(config_.reclaim.gc_interval), [this] {
    if (done_) return;
    gc_sweep();
    schedule_gc_tick();
  });
}

std::vector<Runtime::GcVictim> Runtime::collect_gc_victims() {
  // Replication deliberately stacks copies of whole subtrees: replicas of a
  // parent each spawn their own children, and those children share (stamp,
  // replica) keys across lanes even though every lane is wanted. The
  // (stamp, replica) grouping below cannot tell such by-design lanes from
  // protocol leaks, and replica lanes are reclaimed by the quorum/cancel
  // machinery anyway — so the sweep (and the oracle built on it) stands
  // down entirely when replication is on.
  if (config_.replication.enabled()) return {};
  // Recovery can race the machine into hosting the same (stamp, replica)
  // twice: a reissue fired while the original survived (undetected rejoin,
  // pre-link grace expiry, warm re-host vs. survivor fallback). Results of
  // the extra copies are ignored by the §4.1 duplicate rules, so the only
  // damage is wasted compute.
  //
  // Which copy survives matters: only the copy the live parent's call slot
  // currently points at can still deliver its result (the others address a
  // stale parent ref or lost their relay chain). So the pass resolves each
  // duplicate's parent by stamp and keeps the copy on the processor the
  // parent last (re)spawned toward; with no live, unresolved parent slot —
  // or with the pointed-at copy still in flight — it conservatively keeps
  // everything. Children of the non-kept copies become duplicates of the
  // survivor's children and fall to the *next* pass: selection converges
  // subtree by subtree.
  //
  // This pass reads global state directly — the simulator's omniscient
  // view. In legacy mode it feeds the reclaim sweep; with the cancellation
  // protocol it is demoted to the read-only validation oracle. Parent
  // resolution goes through `tasks_by_stamp`, built in the same single
  // iteration over live tasks, so the whole pass is O(live tasks) — the
  // old per-duplicate scan over all processors made the retained oracle
  // O(P · duplicates) at 256 processors.
  struct Copy {
    net::ProcId proc;
    TaskUid uid;
    TaskRef parent;
  };
  struct Host {
    net::ProcId proc;
    Task* task;
  };
  std::map<std::pair<LevelStamp, std::uint32_t>, std::vector<Copy>> hosts;
  std::unordered_map<LevelStamp, std::vector<Host>, LevelStamp::Hash>
      tasks_by_stamp;  // all live tasks, any replica
  for (net::ProcId p = 0; p < procs_.size(); ++p) {
    if (procs_[p]->crashed()) continue;
    procs_[p]->for_each_task([&](Task& task) {
      const LevelStamp& stamp = task.stamp();
      tasks_by_stamp[stamp].push_back(Host{p, &task});
      // Root reincarnations are the super-root's business; replicated
      // depths are redundant by design (their quorum needs every copy).
      if (stamp.is_root() || quorum_for(stamp.depth()) > 1) return;
      hosts[std::make_pair(stamp, task.packet().replica)].push_back(
          Copy{p, task.uid(), task.packet().parent()});
    });
  }
  // Deterministic candidate order for parent resolution: ascending
  // processor, then ascending uid (for_each_task iterates an unordered
  // map, so the collected order is not reproducible by itself).
  for (auto& [stamp, candidates] : tasks_by_stamp) {
    std::sort(candidates.begin(), candidates.end(),
              [](const Host& a, const Host& b) {
                return a.proc != b.proc ? a.proc < b.proc
                                        : a.task->uid() < b.task->uid();
              });
  }
  std::vector<GcVictim> victims;
  for (auto& [key, copies] : hosts) {
    if (copies.size() < 2) continue;
    const LevelStamp& stamp = key.first;
    const lang::ExprId site = stamp.last();
    const LevelStamp parent_stamp = stamp.parent();
    const auto parent_hosts = tasks_by_stamp.find(parent_stamp);
    // A duplicated *parent* means two live lineages whose child pointers
    // disagree; reclaiming a child now could sever the lineage that wins.
    // Dedup strictly top-down: this level waits until the parent level is
    // unique (a later pass — selection converges level by level).
    if (parent_hosts != tasks_by_stamp.end() &&
        parent_hosts->second.size() > 1) {
      // Replicas legitimately share a stamp on distinct lanes; only treat
      // same-replica multiplicity at the parent level as duplication.
      bool duplicated = false;
      for (std::size_t i = 0;
           !duplicated && i + 1 < parent_hosts->second.size(); ++i) {
        for (std::size_t j = i + 1; j < parent_hosts->second.size(); ++j) {
          if (parent_hosts->second[i].task->packet().replica ==
              parent_hosts->second[j].task->packet().replica) {
            duplicated = true;
            break;
          }
        }
      }
      if (duplicated) continue;
    }
    // Resolve the live parent (lowest processor, then lowest uid — same
    // deterministic choice the old per-processor scan made) and the copy
    // its slot for this call site points at. Strict rule: the pointee must
    // be *acknowledged* — (proc, uid) known exactly — so the pass never
    // guesses between an in-flight respawn and a stale tenant.
    net::ProcId keeper_proc = net::kNoProc;
    TaskUid keeper_uid = kNoTask;
    if (parent_hosts != tasks_by_stamp.end()) {
      for (const Host& host : parent_hosts->second) {
        const CallSlot* slot = host.task->find_slot(site);
        if (slot == nullptr || !slot->spawned || slot->resolved() ||
            slot->child_procs.empty() ||
            slot->child_procs[0] == net::kNoProc ||
            slot->child_uids[0] == kNoTask) {
          continue;
        }
        keeper_proc = slot->child_procs[0];
        keeper_uid = slot->child_uids[0];
        break;
      }
    }
    if (keeper_proc == net::kNoProc) continue;  // no acked pointer: keep all
    // The pointed-at copy must be among the live hosted ones — if the ack
    // is stale (pointee crashed away), reclaim nothing this round.
    const Copy* keep = nullptr;
    for (const Copy& copy : copies) {
      if (copy.proc == keeper_proc && copy.uid == keeper_uid) {
        keep = &copy;
        break;
      }
    }
    if (keep == nullptr) continue;
    for (const Copy& copy : copies) {
      if (&copy != keep) {
        victims.push_back(GcVictim{copy.proc, copy.uid, copy.parent, stamp});
      }
    }
  }
  std::sort(victims.begin(), victims.end(),
            [](const GcVictim& a, const GcVictim& b) {
              return a.key() < b.key();
            });
  return victims;
}

void Runtime::gc_sweep() {
  std::vector<GcVictim> victims = collect_gc_victims();
  if (config_.reclaim.gc_oracle) {
    gc_oracle_check(victims);
    return;
  }
  for (const GcVictim& victim : victims) {
    Processor& host = *procs_[victim.proc];
    Task* task = host.find_task(victim.uid);
    if (task == nullptr) continue;
    ++host.counters().orphans_gced;
    host.counters().reclaim_latency_ticks +=
        (sim_.now() - task->created_at()).ticks();
    host.abort_task(victim.uid, "orphan-gc: duplicate of the linked copy");
  }
}

void Runtime::gc_oracle_check(const std::vector<GcVictim>& victims) {
  // Read-only validation: the cancel protocol's propagation latency is
  // bounded by one network traversal per tree level, far below any
  // sensible oracle cadence — so a duplicate sighted at two consecutive
  // ticks leaked past the protocol. The enforced invariant is exactly the
  // protocol's reach: no duplicate whose own parent *instance* is live may
  // persist (that parent supersedes, resolves, or forwards the cancel).
  // True orphans — the exact parent task is gone — are excluded under a
  // salvaging policy: they are §4.1 salvage material ("returns from orphan
  // tasks are theoretically harmless"), reachable by no message until
  // their results flow, and the old sweep's abort of them is exactly the
  // omniscient shortcut this oracle exists to retire.
  std::vector<std::pair<net::ProcId, TaskUid>> sightings;
  const bool salvaging = policy_->salvages_orphans();
  for (const GcVictim& victim : victims) {
    // An active cut between the victim and its parent stalls every cancel
    // in flight; the duplicate is unreclaimable until links permit, so
    // persisting across ticks is not (yet) a protocol leak.
    if (victim.parent.proc != net::kNoProc &&
        victim.parent.proc < procs_.size() &&
        !network_.reachable(victim.parent.proc, victim.proc)) {
      continue;
    }
    // A lossy link can drop the cancel itself; the sender retries after a
    // backoff of two failure timeouts — several oracle cadences. While a
    // cancel for this lineage waits out that backoff, the reclaim is
    // delayed in the protocol's own pipeline, not leaked.
    if (cancel_backoff_pending(victim.stamp)) continue;
    if (salvaging) {
      const TaskRef parent = victim.parent;
      const bool parent_live =
          parent.proc != net::kNoProc && parent.proc < procs_.size() &&
          !procs_[parent.proc]->crashed() &&
          procs_[parent.proc]->find_task(parent.uid) != nullptr;
      if (!parent_live) continue;
    }
    sightings.push_back(victim.key());
  }
  for (const auto& sighting : sightings) {
    if (std::binary_search(oracle_prev_sightings_.begin(),
                           oracle_prev_sightings_.end(), sighting)) {
      ++gc_oracle_orphans_;
      recorder_.record(sim_.now(), obs::EventKind::kOracleLeak,
                       {.proc = sighting.first, .uid = sighting.second}, [&] {
                         return "uid=" + std::to_string(sighting.second) +
                                " outlived the cancel protocol";
                       });
    }
  }
  oracle_prev_sightings_ = std::move(sightings);
}

bool Runtime::cancel_backoff_pending(const LevelStamp& stamp) const {
  // A backoff's +1 and its matching -1 always come from the same sender, so
  // the books are per-processor (shard-local on the engine path). The OR
  // over processors reproduces the retired global map exactly. Read at
  // coordinator barriers only (gc oracle), where workers are parked.
  for (const auto& proc : procs_) {
    if (proc->cancel_backoff_pending(stamp)) return true;
  }
  return false;
}

void Runtime::freeze_all() {
  for (auto& proc : procs_) {
    if (!proc->crashed()) proc->freeze();
  }
}

void Runtime::unfreeze_all() {
  for (auto& proc : procs_) {
    if (!proc->crashed()) proc->unfreeze();
  }
}

std::uint64_t Runtime::total_state_units() const {
  std::uint64_t units = 0;
  for (const auto& proc : procs_) {
    if (!proc->crashed()) units += proc->state_units();
  }
  return units;
}

core::RunResult Runtime::collect(sim::SimTime end_time,
                                 std::uint64_t faults_injected) const {
  core::RunResult result;
  result.completed = done_;
  if (done_) result.answer = super_root_->answer();
  result.makespan_ticks =
      done_ ? completion_time_.ticks() : end_time.ticks();
  result.detection_ticks = first_detection_ticks_;
  result.faults_injected = faults_injected;
  result.processors = config_.processors;
  result.processors_alive_at_end = network_.alive_count();
  result.sim_events = sim_.events_executed() +
                      (engine_ != nullptr ? engine_->shard_events() : 0);
  result.net = network_.stats();
  result.net.sent[static_cast<std::size_t>(net::MsgKind::kLoadUpdate)] +=
      scheduler_messages_;
  result.counters.orphans_stranded += stranded_from_host_;
  result.counters.gc_oracle_orphans += gc_oracle_orphans_;
  // A root reincarnation is a recovery respawn too (§4.3.1).
  result.counters.tasks_respawned += super_root_->root_respawns();

  for (const auto& proc : procs_) {
    result.counters.merge(proc->counters());
    result.stranded_tasks += proc->live_task_count();
    const auto& table = proc->table();
    result.counters.checkpoint_records += table.records_made();
    result.counters.checkpoint_subsumed += table.subsumed();
    result.counters.checkpoint_released += table.released();
    result.counters.checkpoint_taken += table.taken();
    result.counters.checkpoint_evicted += table.evicted();
    result.counters.checkpoint_cleared += table.cleared();
    result.counters.checkpoint_resident += table.total_records();
    result.counters.checkpoint_peak_entries += table.peak_records();
    result.counters.checkpoint_peak_units += table.peak_units();
    const auto& durable = proc->durable_store();
    result.counters.store_entries_logged += durable.entries_logged();
    result.counters.store_entries_lost += durable.entries_lost();
    result.counters.store_records_replayed += durable.records_replayed();
  }
  policy_->contribute(result.counters);
  return result;
}

}  // namespace splice::runtime
