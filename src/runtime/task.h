// A task: one function application in the call tree.
//
// Task evaluation follows §4.2's protocol loop:
//   "task packet: Execute the task. DO each instruction. If an unevaluated
//    function encountered, DEMAND IT. If cannot proceed, suspend the task.
//    UNTIL completion. Send the result to the parent."
//
// Each *scan* interprets the body against the current call-slot contents:
// primitive subtrees evaluate locally; Call nodes whose arguments are ready
// and whose slot is empty become spawn requests (DEMAND_IT); when the root
// expression folds to a value the task completes. If-branches are lazy, so
// only the demanded side of a conditional spawns children — that is what
// terminates recursion.
//
// The task state machine mirrors Fig. 6 (states a-g) from the task's own
// viewpoint; transient states b/d of the figure live in the network as
// unacknowledged packets.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "lang/program.h"
#include "runtime/task_packet.h"
#include "sim/time.h"

namespace splice::runtime {

enum class TaskState : std::uint8_t {
  kQueued,     // packet accepted by a processor, no scan yet
  kRunning,    // a scan step is executing
  kWaiting,    // suspended on outstanding children ("cannot proceed")
  kCompleted,  // value produced and forwarded
  kAborted,    // killed by recovery policy (rollback orphan rule)
};

[[nodiscard]] std::string_view to_string(TaskState state) noexcept;

/// Bookkeeping for one call site of the body: the functional checkpoint
/// (retained packet), the child pointer(s) learned from acks, the result,
/// and splice-recovery relay state.
struct CallSlot {
  lang::ExprId site = lang::kNoExpr;

  /// Functional checkpoint: "as a child task is spawned to a new node, the
  /// parent task may retain a copy of the task packet. This retained copy
  /// is all that the parent needs to regenerate the child task." (§2.1)
  TaskPacket retained;

  bool spawned = false;
  std::optional<lang::Value> result;

  /// Destinations the packet (replicas) went to at the last (re)spawn.
  /// Inline for the common replication factors — slot bookkeeping costs no
  /// heap for <= 2 replicas.
  util::SmallVec<net::ProcId, 2> sent_to;
  /// Where each replica of the child was acknowledged (kNoProc until ack).
  util::SmallVec<net::ProcId, 2> child_procs;
  util::SmallVec<TaskUid, 2> child_uids;

  /// Replication votes (§5.3): values returned by replicas so far.
  std::uint32_t votes = 0;

  /// Times this slot was re-spawned by recovery.
  std::uint32_t respawns = 0;

  /// True when the current incarnation of the child is a recovery twin
  /// (step-child) created after a failure.
  bool twin_active = false;

  /// True when a warm rejoin pre-linked this slot to a child that survives
  /// on a peer: the result is awaited instead of respawned. Cleared when
  /// the pre-link grace sweep gives up waiting and respawns.
  bool prelinked = false;

  /// Pre-link provenance: the uid of the *previous incarnation's* task that
  /// originally spawned the awaited child (the restored checkpoint's owner
  /// before rebinding). A cancel for the awaited original must carry the
  /// parent ref that original actually holds — the re-hosted owner's fresh
  /// uid would name the replacement twin instead. Cleared on respawn.
  TaskUid prelink_prev_owner = kNoTask;

  /// Orphan results received for *grandchildren* under this slot, awaiting
  /// the twin's ack so they can be relayed (grandparent transport role,
  /// §4.1: "it transports the orphan results to their step-parent").
  std::vector<ResultMsg> pending_relay;

  [[nodiscard]] bool resolved() const noexcept { return result.has_value(); }
  [[nodiscard]] bool outstanding() const noexcept {
    return spawned && !result.has_value();
  }
};

/// A spawn demanded by a scan: DEMAND_IT input.
struct SpawnRequest {
  lang::ExprId site = lang::kNoExpr;
  lang::FuncId fn = 0;
  TaskPacket::Args args;
};

struct ScanOutcome {
  std::optional<lang::Value> result;
  /// Inline for the common fan-outs (a binary body demands at most two
  /// children per scan); higher-arity bodies spill to the heap once.
  util::SmallVec<SpawnRequest, 2> spawns;
  /// Abstract ticks of local work this scan performed.
  std::uint64_t cost = 0;
};

class Task {
 public:
  Task(TaskUid uid, TaskPacket packet, sim::SimTime created_at)
      : uid_(uid), packet_(std::move(packet)), created_at_(created_at) {}

  [[nodiscard]] TaskUid uid() const noexcept { return uid_; }
  [[nodiscard]] const TaskPacket& packet() const noexcept { return packet_; }
  [[nodiscard]] const LevelStamp& stamp() const noexcept {
    return packet_.stamp;
  }
  [[nodiscard]] TaskState state() const noexcept { return state_; }
  void set_state(TaskState state) noexcept { state_ = state; }
  [[nodiscard]] sim::SimTime created_at() const noexcept { return created_at_; }

  /// Interpret the body against current slots. Does not mutate slot spawn
  /// flags — the caller (processor) marks slots spawned once packets are
  /// actually sent, then calls note_spawned().
  [[nodiscard]] ScanOutcome scan(const lang::Program& program);

  /// Mark a slot spawned and retain its checkpoint packet.
  void note_spawned(lang::ExprId site, TaskPacket retained);

  /// Record a child ack (parent-to-child pointer, Fig. 6 state c). Returns
  /// false — and records nothing — when `lineage` is older than the slot's
  /// current spawn generation: a stale ack from a superseded (possibly
  /// already cancelled) instance must not overwrite the pointer the
  /// replacement's ack establishes, or recovery would relay results and
  /// forward cancels into a corpse.
  bool note_ack(lang::ExprId site, TaskRef child, std::uint32_t replica,
                std::uint32_t lineage);

  /// Deliver a result into a slot. With replication, `quorum` > 1 results
  /// must arrive before the slot resolves (§5.3 majority consensus; values
  /// are identical by determinacy, so the vote is a count). Returns true if
  /// the slot newly resolved — false for duplicates (cases 6-8: "the second
  /// copy is simply ignored").
  bool deliver_result(lang::ExprId site, const lang::Value& value,
                      std::uint32_t quorum);

  /// Pre-fill a slot that was never spawned (splice case 4: result arrives
  /// before the twin first scans; "P' will not spawn C' because the answer
  /// is already there").
  void prefill(lang::ExprId site, const lang::Value& value);

  [[nodiscard]] CallSlot* find_slot(lang::ExprId site);
  [[nodiscard]] const CallSlot* find_slot(lang::ExprId site) const;
  CallSlot& slot(lang::ExprId site);
  /// Slots in creation (body scan) order; each carries its own `site`.
  /// Inline storage: a task with <= 2 call sites costs no slot-map nodes.
  using Slots = util::SmallVec<CallSlot, 2>;
  [[nodiscard]] const Slots& slots() const noexcept { return slots_; }
  [[nodiscard]] Slots& slots_mut() noexcept { return slots_; }

  [[nodiscard]] std::uint32_t outstanding_children() const noexcept;
  [[nodiscard]] std::uint64_t scan_count() const noexcept { return scans_; }

  /// Dirty: a slot resolved while a scan step was executing, so the task
  /// must be rescanned when the step finishes.
  [[nodiscard]] bool dirty() const noexcept { return dirty_; }
  void set_dirty(bool dirty) noexcept { dirty_ = dirty; }

  /// State-resident size in abstract units (packet + resolved results);
  /// used by the periodic-global baseline to cost snapshots and by the
  /// storage-overhead experiment.
  [[nodiscard]] std::uint32_t state_units() const noexcept;

 private:
  using RequestedSites = util::SmallVec<lang::ExprId, 8>;
  std::optional<lang::Value> eval(const lang::Program& program,
                                  const lang::FunctionDef& def,
                                  lang::ExprId expr, ScanOutcome& outcome,
                                  RequestedSites& requested);

  TaskUid uid_;
  TaskPacket packet_;
  sim::SimTime created_at_;
  TaskState state_ = TaskState::kQueued;
  Slots slots_;
  std::uint64_t scans_ = 0;
  bool dirty_ = false;
};

}  // namespace splice::runtime
