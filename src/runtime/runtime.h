// The distributed applicative runtime: processors + scheduler + recovery
// policy + super-root, wired onto the simulated network.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "checkpoint/super_root.h"
#include "core/config.h"
#include "core/metrics.h"
#include "core/trace.h"
#include "lang/interpreter.h"
#include "lang/program.h"
#include "net/network.h"
#include "obs/journal.h"
#include "obs/recorder_context.h"
#include "recovery/policy.h"
#include "runtime/processor.h"
#include "sched/scheduler.h"
#include "sim/context.h"
#include "sim/simulator.h"

namespace splice::runtime {

/// The sharded (PDES) engine's service interface, as the Runtime sees it.
/// Null on the classic single-thread path. The contract mirrors the
/// conservative-window design:
///  * worker -> coordinator traffic goes through post_host: the op is
///    stamped with the posting thread's simulated time and a per-acting-
///    processor sequence number, and the coordinator replays the batch at
///    the next barrier in (when, acting, seq) order — a pure function of
///    each processor's own event history, hence independent of the shard
///    count;
///  * coordinator -> worker traffic goes through post_shard while the
///    workers are parked at a barrier: the op lands in the target shard's
///    heap and executes at the start of the next window, ordered by the
///    coordinator's posting sequence.
class EngineHooks {
 public:
  virtual ~EngineHooks() = default;
  /// Stage `fn` to run on the coordinator thread at the next barrier, as a
  /// coordinator event at the posting thread's current simulated time.
  virtual void post_host(net::ProcId acting, std::function<void()> fn) = 0;
  /// Coordinator-only: stage `fn` to run on `target`'s shard thread at the
  /// start of the next window.
  virtual void post_shard(net::ProcId target, std::function<void()> fn) = 0;
  /// Run `fn` with `p`'s shard simulator installed as the thread context.
  /// Setup-time only (no worker may be running).
  virtual void with_shard_of(net::ProcId p,
                             const std::function<void()>& fn) = 0;
  /// Barrier-published queue length of `p` — the scheduler's load snapshot.
  /// Workers must not read another shard's live queue.
  [[nodiscard]] virtual std::uint32_t load_of(net::ProcId p) const = 0;
  /// Events executed across all shard simulators (coordinator excluded).
  [[nodiscard]] virtual std::uint64_t shard_events() const = 0;
  /// Pending events + staged ops across all shards (queue-depth gauge).
  [[nodiscard]] virtual std::uint64_t shard_pending() const = 0;
  /// Record one metrics gauge sample; the engine interleaves stored samples
  /// with journal events when it merges the shard rings.
  virtual void note_gauge_sample(sim::SimTime now, std::uint64_t queue_depth,
                                 std::uint64_t in_flight,
                                 std::uint64_t residency) = 0;
};

class Runtime {
 public:
  Runtime(sim::Simulator& sim, net::Network& network,
          const core::SystemConfig& config, const lang::Program& program);
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Inject the root application through the super-root; arm heartbeats and
  /// the scheduler tick. Call once before running the simulator.
  void start();

  [[nodiscard]] bool done() const noexcept { return done_; }
  [[nodiscard]] const lang::Value& answer() const {
    return super_root_->answer();
  }
  [[nodiscard]] sim::SimTime completion_time() const noexcept {
    return completion_time_;
  }

  // ---- services for processors & policies ---------------------------------
  /// The calling thread's simulator: the shard simulator inside an engine
  /// window, the owning (classic/coordinator) simulator otherwise. Protocol
  /// code schedules and reads the clock through this accessor, so the same
  /// code runs unchanged on both paths.
  [[nodiscard]] sim::Simulator& sim() noexcept { return sim::ctx(sim_); }
  /// The coordinator's simulator regardless of thread context (engine and
  /// run-loop plumbing; protocol code wants sim()).
  [[nodiscard]] sim::Simulator& coordinator_sim() noexcept { return sim_; }
  [[nodiscard]] net::Network& network() noexcept { return network_; }
  [[nodiscard]] const core::SystemConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const lang::Program& program() const noexcept {
    return program_;
  }
  [[nodiscard]] sched::Scheduler& scheduler() noexcept { return *scheduler_; }
  [[nodiscard]] recovery::RecoveryPolicy& policy() noexcept { return *policy_; }
  /// The flight recorder every protocol hook journals into (obs/journal.h).
  /// Hooks call recorder().record(...) unconditionally; when the recorder
  /// is off that is a single branch. Thread-context aware like sim(): on an
  /// engine worker this resolves to the shard's own ring (no global lock on
  /// the record hot path), which the engine merges post-run.
  [[nodiscard]] obs::Recorder& recorder() noexcept {
    return obs::recorder_ctx(recorder_);
  }
  [[nodiscard]] const obs::Recorder& recorder() const noexcept {
    return obs::recorder_ctx(const_cast<obs::Recorder&>(recorder_));
  }
  /// The canonical (merged) recorder, ignoring thread context — the engine
  /// replays shard rings into this one at the end of a run.
  [[nodiscard]] obs::Recorder& base_recorder() noexcept { return recorder_; }
  /// The human-readable trace, materialised on demand as a rendering view
  /// over the typed journal (the write path is recorder(); this is the
  /// read path the figure walkthroughs and test assertions consume).
  [[nodiscard]] core::Trace& trace();
  [[nodiscard]] checkpoint::SuperRoot& super_root() noexcept {
    return *super_root_;
  }
  [[nodiscard]] Processor& processor(net::ProcId p) { return *procs_.at(p); }
  [[nodiscard]] std::uint32_t processor_count() const noexcept {
    return static_cast<std::uint32_t>(procs_.size());
  }

  /// Allocate a task uid for work hosted on `acting`. Classic path: one
  /// global counter. Engine path: per-processor arithmetic streams
  /// (uid = base + k * P + acting), so allocation is thread-free and each
  /// processor's uid sequence depends only on its own accept history —
  /// identical across shard counts.
  [[nodiscard]] TaskUid next_uid(net::ProcId acting) noexcept {
    if (engine_ == nullptr) return uid_counter_++;
    TaskUid& next = uid_stream_next_[acting];
    const TaskUid uid = next;
    next += procs_.size();
    return uid;
  }

  // ---- multi-process group (distributed transports) ------------------------
  /// Does this OS process own the super-root / host channel? True for every
  /// single-process transport; true only on rank 0's process over TCP.
  [[nodiscard]] bool hosts_super_root() const noexcept {
    return hosts_super_root_;
  }
  /// A kShutdown control message arrived (multi-process group teardown).
  /// The driver loop polls this to exit.
  void request_shutdown() noexcept { shutdown_requested_ = true; }
  [[nodiscard]] bool shutdown_requested() const noexcept {
    return shutdown_requested_;
  }
  /// The next uid `acting` will allocate (nothing consumed). Processors
  /// snapshot this at revive time as their incarnation's uid watermark;
  /// the watermark only ever filters acks for parents allocated from the
  /// host's own stream, so the per-stream value is the right one on the
  /// engine path.
  [[nodiscard]] TaskUid current_uid(net::ProcId acting) const noexcept {
    return engine_ == nullptr ? uid_counter_ : uid_stream_next_[acting];
  }

  // ---- sharded (PDES) engine ----------------------------------------------
  /// Install the engine's service hooks (null = classic path). Re-attaches
  /// the scheduler with per-origin streams and switches uid allocation to
  /// per-processor streams. Call before start().
  void set_engine(EngineHooks* engine);
  [[nodiscard]] EngineHooks* engine() const noexcept { return engine_; }
  /// True on an engine worker thread (inside a shard window).
  [[nodiscard]] bool in_shard_context() const noexcept {
    return engine_ != nullptr && sim::ctx_shard() != sim::kNoShard;
  }

  // ---- warm rejoin (store/ subsystem) --------------------------------------
  /// Set by the simulation facade when the armed fault plan repairs nodes
  /// in warm mode: revives replay the durable log and run survivor-assisted
  /// state transfer, and reissue obligations against a dead node defer.
  void set_warm_rejoin(bool warm) noexcept { warm_rejoin_ = warm; }
  [[nodiscard]] bool warm_rejoin() const noexcept { return warm_rejoin_; }

  /// Warm-mode deferral: instead of reissuing its checkpoints against
  /// `dead` now, `proc` keeps them until the node rejoins (state transfer
  /// re-hosts them) or the grace period expires (cold reissue fallback via
  /// RecoveryPolicy::reissue_against). Returns false when warm rejoin is
  /// off — the caller reissues immediately, as the paper prescribes.
  bool defer_reissue(Processor& proc, net::ProcId dead);

  /// §5.3 replication: copies of a task at stamp depth `depth`.
  [[nodiscard]] std::uint32_t replication_for(std::size_t depth) const noexcept;
  /// Votes a slot needs before resolving a child at `depth`.
  [[nodiscard]] std::uint32_t quorum_for(std::size_t depth) const noexcept;

  /// Host channel: deliver a result addressed to the super-root sentinel.
  /// `acting` is the processor on whose behalf the call is made (the result
  /// holder) — the engine uses it to order the op deterministically.
  void deliver_to_super_root(ResultMsg msg, net::ProcId acting);
  /// Host channel: root spawn acknowledgement.
  void super_root_ack(AckMsg msg, net::ProcId acting);
  /// Host channel: relay a message to a processor (reliable, small delay).
  /// Coordinator-context only on the engine path (super-root relay).
  void host_send_result(ResultMsg msg);

  /// System-wide once-per-dead-processor bookkeeping (detection latency,
  /// super-root notification, global policy hooks). `detector` is the
  /// processor whose timeout fired.
  void note_detection(net::ProcId dead, net::ProcId detector);

  /// A kCancel for `stamp` bounced off a lossy link and is waiting out its
  /// retransmission backoff (+1), or the backoff fired (-1). While any
  /// cancel for a stamp is in this pipeline, the gc oracle must not call
  /// its victim a protocol leak — the reclaim is delayed, not lost.
  /// Storage is per-processor (the +1 and its matching -1 always come from
  /// the same sender), so the engine path needs no coordination; the
  /// pending check ORs across processors, which is exactly the old global
  /// map's semantics.
  [[nodiscard]] bool cancel_backoff_pending(const LevelStamp& stamp) const;

  /// FaultInjector callback: destroy the node's volatile state.
  void on_kill(net::ProcId dead);

  /// FaultInjector callback: a repaired node rejoined blank. Reinitialises
  /// the processor, re-arms failure detection for it, and lets the recovery
  /// policy react.
  void on_revive(net::ProcId back);

  /// FaultInjector on_heal callback: a partition around `side` healed.
  /// While the cut stood, every cross-cut send bounced and both halves
  /// declared the other dead (§1: unreachable is faulty) — a verdict no
  /// rejoin notice will ever clear, because the "dead" nodes never died.
  /// Reconcile the mutual suspicion: every survivor that believes a live
  /// node across the healed cut is dead relearns it alive, exactly as a
  /// rejoin notice would have taught it.
  void on_partition_heal(const std::vector<net::ProcId>& side);

  // ---- fault triggers ------------------------------------------------------
  void set_trigger_sink(std::function<void(const std::string&)> sink) {
    trigger_sink_ = std::move(sink);
  }
  [[nodiscard]] bool has_triggers() const noexcept {
    return static_cast<bool>(trigger_sink_);
  }
  void fire_trigger(const std::string& name) {
    if (trigger_sink_) trigger_sink_(name);
  }

  // ---- periodic-global coordinator helpers ---------------------------------
  void freeze_all();
  void unfreeze_all();
  [[nodiscard]] std::uint64_t total_state_units() const;

  /// Aggregate the run's metrics. `end_time` is the simulator time when the
  /// run loop stopped.
  [[nodiscard]] core::RunResult collect(sim::SimTime end_time,
                                        std::uint64_t faults_injected) const;

  [[nodiscard]] std::int64_t first_detection_ticks() const noexcept {
    return first_detection_ticks_;
  }

  /// One identified duplicate copy (sweep victim / oracle sighting).
  struct GcVictim {
    net::ProcId proc = net::kNoProc;
    TaskUid uid = kNoTask;
    /// The victim's own parent ref (ancestors[0] of its packet).
    TaskRef parent;
    /// The duplicated stamp — lets the oracle match pending cancel
    /// retransmissions (which address lineages by stamp) to sightings.
    LevelStamp stamp;

    [[nodiscard]] auto key() const noexcept {
      return std::pair<net::ProcId, TaskUid>{proc, uid};
    }
  };

 private:
  sim::Simulator& sim_;
  net::Network& network_;
  core::SystemConfig config_;
  const lang::Program& program_;

  std::vector<std::unique_ptr<Processor>> procs_;
  std::unique_ptr<sched::Scheduler> scheduler_;
  std::unique_ptr<recovery::RecoveryPolicy> policy_;
  std::unique_ptr<checkpoint::SuperRoot> super_root_;
  obs::Recorder recorder_;
  core::Trace trace_;  // lazily rebuilt view over recorder_'s journal
  std::uint64_t trace_materialized_ = UINT64_MAX;

  EngineHooks* engine_ = nullptr;
  /// Engine path: per-processor uid stream cursors (see next_uid). Written
  /// only by the owning processor's shard thread.
  std::vector<TaskUid> uid_stream_next_;

  TaskUid uid_counter_ = checkpoint::SuperRoot::kSuperRootUid + 1;
  bool done_ = false;
  bool hosts_super_root_ = true;
  bool shutdown_requested_ = false;
  bool warm_rejoin_ = false;
  sim::SimTime completion_time_;
  std::int64_t first_detection_ticks_ = -1;
  std::vector<bool> detection_noted_;
  std::uint64_t scheduler_messages_ = 0;
  std::uint64_t host_messages_ = 0;
  std::uint64_t stranded_from_host_ = 0;
  std::function<void(const std::string&)> trigger_sink_;

  /// Build the scheduler environment (classic or engine flavour) and attach.
  void attach_scheduler();
  void schedule_scheduler_tick();
  /// Flight-recorder metrics sampling (config.obs.sample_interval): close
  /// one goodput/gauge window per interval. Read-only — it perturbs no
  /// protocol state, so seeded runs journal identically with it on or off.
  void schedule_obs_sample();
  /// Live checkpoint entries across all healthy processors (gauge feed).
  [[nodiscard]] std::uint64_t checkpoint_resident_now() const;
  /// Orphan GC (config.reclaim.gc_interval): periodically reclaim — or, in oracle
  /// mode, merely identify — duplicate live tasks left behind by racing
  /// recovery actions. See gc_sweep().
  void schedule_gc_tick();
  void gc_sweep();
  /// The sweep's victim-selection pass, shared by the legacy reclaim mode
  /// and the read-only validation oracle. Single pass over all live tasks;
  /// parent resolution goes through a stamp-hash map built alongside, so
  /// the cost is O(live tasks), independent of machine size.
  [[nodiscard]] std::vector<GcVictim> collect_gc_victims();
  /// Oracle tick: a victim sighted in two consecutive sweeps outlived the
  /// cancel protocol's bounded propagation — count it as a leak.
  void gc_oracle_check(const std::vector<GcVictim>& victims);
  [[nodiscard]] net::ProcId spawn_root_packet(TaskPacket packet);
  /// Oracle memory: victims sighted at the previous tick.
  std::vector<std::pair<net::ProcId, TaskUid>> oracle_prev_sightings_;
  std::uint64_t gc_oracle_orphans_ = 0;
};

}  // namespace splice::runtime
