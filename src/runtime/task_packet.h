// Task packets and message payloads.
//
// "A task packet is formed for the new function and then waits for
//  execution. The packet contains all necessary information, either directly
//  or indirectly accessible, to activate the child task." (§2.1)
//
// The packet also carries the resilient-structure linkage of §4: the
// identity of the parent, the grandparent ("may be just an integer"), and —
// when the great-grandparent extension of §5.2 is enabled — deeper
// ancestors.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lang/expr.h"
#include "lang/value.h"
#include "net/topology.h"
#include "runtime/level_stamp.h"
#include "sim/time.h"
#include "util/small_vec.h"

namespace splice::runtime {

using TaskUid = std::uint64_t;
inline constexpr TaskUid kNoTask = 0;

/// Where a task lives: which processor hosts which task instance.
struct TaskRef {
  net::ProcId proc = net::kNoProc;
  TaskUid uid = kNoTask;

  [[nodiscard]] bool valid() const noexcept { return proc != net::kNoProc; }
  [[nodiscard]] bool operator==(const TaskRef&) const = default;
};

struct TaskPacket {
  /// Inline argument list: packet copies (checkpoint retention, replicas,
  /// state transfer) stay allocation-free for every workload arity.
  using Args = util::SmallVec<lang::Value, 4>;

  LevelStamp stamp;
  lang::FuncId fn = 0;
  Args args;

  /// Call site in the parent's body whose slot this task's result fills.
  lang::ExprId call_site = lang::kNoExpr;

  /// Ancestor chain: ancestors[0] is the parent, ancestors[1] the
  /// grandparent, ancestors[2] the great-grandparent, ... Length is the
  /// configured resilience depth (>= 2 for splice). The root's chain points
  /// at the super-root sentinel. Inline small-vector: copying a packet
  /// never allocates for the chain at any depth the config allows.
  util::SmallVec<TaskRef, 4> ancestors;

  /// Replica ordinal for §5.3 replicated-task redundancy (0 for the
  /// primary; replicas share the stamp).
  std::uint32_t replica = 0;

  /// Spawn generation of the owning call slot: 0 for the first spawn, then
  /// the slot's respawn count. An ack echoing a lineage older than the
  /// slot's current one is stale (it names a superseded, possibly already
  /// cancelled instance) and must not overwrite the parent-to-child
  /// pointer the replacement's ack will establish.
  std::uint32_t lineage = 0;

  /// Replication zone: lane confinement à la Misunas's TMR dataflow
  /// machine ("each copy is executed by a different processor and utilizes
  /// different communication paths", cited in §5.4). Tasks with zone >= 0
  /// are placed only on processors p with p % factor == zone, so a single
  /// crash damages at most one lane. -1 = unconstrained.
  std::int32_t zone = -1;

  [[nodiscard]] TaskRef parent() const {
    return ancestors.empty() ? TaskRef{} : ancestors[0];
  }
  [[nodiscard]] TaskRef grandparent() const {
    return ancestors.size() < 2 ? TaskRef{} : ancestors[1];
  }

  /// Wire size: stamp + args + bookkeeping.
  [[nodiscard]] std::uint32_t size_units() const noexcept;

  [[nodiscard]] std::string describe() const;
};

/// kForwardResult payload. `relation` says how the sender believes the
/// receiver relates to the producing task — the receiver re-derives the
/// truth from the stamp, per the protocol's "Interpret the level stamp".
enum class ResultRelation : std::uint8_t {
  kToParent,       // normal return
  kToAncestor,     // orphan return diverted to grandparent or beyond (§4)
};

struct ResultMsg {
  LevelStamp stamp;              // stamp of the producing task
  lang::ExprId call_site = lang::kNoExpr;
  lang::Value value;
  TaskRef target;                // task expected to consume the result
  ResultRelation relation = ResultRelation::kToParent;
  /// Index into the producer's ancestor chain that `target` came from
  /// (0 = parent). Lets the receiver escalate to the next ancestor on
  /// failure when the §5.2 extension is active.
  std::uint32_t ancestor_index = 0;
  /// Remaining ancestor chain of the producer (for escalation).
  util::SmallVec<TaskRef, 4> ancestors;
  std::uint32_t replica = 0;
  /// True once an ancestor relayed this result toward a step-parent —
  /// consuming such a result is a *salvage* (§4's whole point).
  bool relayed = false;

  [[nodiscard]] std::uint32_t size_units() const noexcept {
    return 1 + value.size_units();
  }
};

/// kSpawnAck payload: "task G receives an acknowledge from P and establishes
/// a parent-to-child pointer to P" (Fig. 6 state c).
struct AckMsg {
  LevelStamp stamp;      // stamp of the acknowledged child
  lang::ExprId call_site = lang::kNoExpr;
  TaskRef parent;        // who should record the pointer
  TaskRef child;         // where the child actually landed
  std::uint32_t replica = 0;
  /// Echo of TaskPacket::lineage: the parent drops acks from spawn
  /// generations older than the slot's current one (cancel/ack race guard).
  std::uint32_t lineage = 0;
};

/// kCancel payload: abort a duplicate task lineage. Every corrective action
/// of the recovery scheme travels as a message; reclamation is no
/// exception. A cancel names its victim by (stamp, replica) — the identity
/// that survives crashes (§3.1) — plus the exact uid when the issuer holds
/// an acknowledged pointer. Receivers abort the addressed task, release the
/// checkpoint-table entries it retained for its own children, and forward
/// cancels down every outstanding call slot, so a whole duplicate subtree
/// converges by message propagation instead of by an omniscient sweep.
struct CancelMsg {
  LevelStamp stamp;               // stamp of the lineage being cancelled
  std::uint32_t replica = 0;
  /// Exact victim instance when the issuer saw its ack; kNoTask = address
  /// by (stamp, replica, parent) instead.
  TaskUid uid = kNoTask;
  /// Stamp-addressed cancels name the *parent instance* whose spawn they
  /// revoke: only a task whose packet carries this exact parent ref
  /// matches. Task uids are never reused, so two same-stamp instances at
  /// one destination (duplicate lineages racing) can never be confused —
  /// a cancel reaches the issuer's own superseded child and nothing else.
  TaskRef parent;
  /// Incarnation fence for stamp-addressed cancels: only instances accepted
  /// *before* this time match. The issuer's replacement twin (same parent
  /// ref by construction) is spawned after the cancel is issued, so the
  /// fence keeps the revocation from ever touching it.
  sim::SimTime issued_at;

  [[nodiscard]] std::uint32_t size_units() const noexcept { return 1; }
};

/// kErrorDetection payload: "processor `dead` is faulty".
struct ErrorMsg {
  net::ProcId dead = net::kNoProc;
  net::ProcId reporter = net::kNoProc;
};

/// kHeartbeat payload (probe; liveness is inferred from delivery failures).
struct HeartbeatMsg {
  std::uint64_t sequence = 0;
};

/// kRejoinNotice payload: `who` was repaired and rejoined blank; receivers
/// drop it from their dead sets so traffic and scheduling resume.
struct RejoinMsg {
  net::ProcId who = net::kNoProc;
};

/// kLoadUpdate payload for the gradient-model scheduler.
struct LoadMsg {
  std::uint32_t pressure = 0;
  std::uint32_t proximity = 0;
};

/// kControl payload kinds used by the runtime.
enum class ControlKind : std::uint8_t {
  kStartRoot,        // super-root injects the root task
  kFreeze,           // periodic-global baseline: stop-the-world begin
  kUnfreeze,         // periodic-global baseline: resume
  kShutdown,         // multi-process driver: root broadcasts group teardown
};

struct ControlMsg {
  ControlKind kind = ControlKind::kStartRoot;
};

}  // namespace splice::runtime
