// Parallel sharded simulation core: a conservative time-window PDES driver.
//
// The classic path runs the whole machine on one Simulator. The engine
// partitions processors across `shards` worker threads (shard_of(p) =
// p % shards), each owning a private Simulator + op heap + journal ring, and
// runs events window by window on a fixed grid W_k = k * L, where the
// lookahead L is the latency model's base cost — the minimum cross-processor
// message delay. Because every cross-processor send posted inside window k
// (at time >= W_k) delivers at >= W_k + L = W_{k+1}, a delivery staged into
// the destination shard's inbox during window k is always drained in time
// for window k+1: no shard ever receives an op for its past. Loopback
// (same-processor) sends are same-shard by construction and go straight
// into the shard's own heap, so their short `local` delay needs no window
// guarantee.
//
// Thread roles per window:
//  * barrier k (workers parked): the coordinator drains staged host ops in
//    (when, acting, seq) order into its own Simulator, runs every
//    coordinator event with time <= W_k (fault kills, super-root traffic,
//    scheduler/gc/obs ticks), publishes the per-processor load snapshot the
//    schedulers read, and decides termination;
//  * window k (coordinator parked at the barrier pair): each worker drains
//    its inboxes into its heap, normalizes its clock to W_k, then
//    interleaves heap ops and simulator events in timestamp order up to
//    (exclusive) W_{k+1}.
//
// Determinism contract — bit-identical runs for any shard count K >= 1:
// every op carries a key (when, class, stream, seq) that is a pure function
// of per-processor event histories, never of thread interleaving. Delivery
// ops take their seq from a per-(directed link, lane) counter whose single
// writer is the posting processor's shard thread; the lane splits bounce
// notices by cause (send-path timeout vs delivery-path bounce), the one
// case where two different threads can legitimately post on the same
// directed link. Coordinator-posted ops sort ahead of same-time deliveries
// (class 0) under one coordinator-owned counter. The A/B oracle for
// `shards = K` is the same engine at `shards = 1`; the classic
// `shards = 0` path is untouched.
//
// Feature gating: engine mode rejects (std::invalid_argument) configurations
// whose semantics depend on the classic global event order — the wire
// transports, kRestart / kPeriodicGlobal recovery, and the legacy
// reclaiming GC sweep (the read-only oracle is fine). Triggered faults are
// rejected by the Simulation facade, which owns the fault plan.
#pragma once

#include <array>
#include <barrier>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "core/config.h"
#include "net/message.h"
#include "net/network.h"
#include "obs/journal.h"
#include "obs/recorder_context.h"
#include "runtime/runtime.h"
#include "sim/context.h"
#include "sim/simulator.h"
#include "util/annotations.h"

namespace splice::runtime {

class PdesEngine final : public net::EnvelopeRouter, public EngineHooks {
 public:
  /// Validates the configuration for engine mode (throws
  /// std::invalid_argument naming the offending knob) and builds the shard
  /// set. Call Network::set_router(engine) and Runtime::set_engine(&engine)
  /// before Runtime::start().
  PdesEngine(Runtime& runtime, net::Network& network,
             const core::SystemConfig& config);
  ~PdesEngine() override;

  PdesEngine(const PdesEngine&) = delete;
  PdesEngine& operator=(const PdesEngine&) = delete;

  /// Drive the run: spawn the worker team and execute windows until the
  /// whole system is idle or the window grid passes `deadline`. Joins the
  /// workers before returning.
  void run(sim::SimTime deadline);

  /// Replay the per-shard journal rings and the coordinator's ring into the
  /// runtime's canonical recorder, merged in (ticks, phase, proc) order with
  /// the stored gauge samples interleaved. Call once after run(); no-op when
  /// the recorder is off.
  void merge_journals();

  [[nodiscard]] std::uint32_t shard_count() const noexcept {
    return static_cast<std::uint32_t>(shards_.size());
  }
  [[nodiscard]] std::uint32_t shard_of(net::ProcId p) const noexcept {
    return shard_of_[p];
  }
  /// Window barriers crossed (scaling diagnostics).
  [[nodiscard]] std::uint64_t windows_run() const noexcept {
    return windows_run_;
  }
  /// Latest simulated time any simulator reached (run-loop end time).
  [[nodiscard]] sim::SimTime horizon() const noexcept;

  // ---- net::EnvelopeRouter -------------------------------------------------
  void route(net::Envelope&& envelope, sim::SimTime when) override;

  // ---- EngineHooks ---------------------------------------------------------
  void post_host(net::ProcId acting, std::function<void()> fn) override;
  void post_shard(net::ProcId target, std::function<void()> fn) override;
  void with_shard_of(net::ProcId p, const std::function<void()>& fn) override;
  [[nodiscard]] std::uint32_t load_of(net::ProcId p) const override;
  [[nodiscard]] std::uint64_t shard_events() const override;
  [[nodiscard]] std::uint64_t shard_pending() const override;
  void note_gauge_sample(sim::SimTime now, std::uint64_t queue_depth,
                         std::uint64_t in_flight,
                         std::uint64_t residency) override;

 private:
  /// One unit of cross-thread work, totally ordered by
  /// (when, cls, stream, seq). cls 0 = coordinator-posted lifecycle op
  /// (runs `fn`); cls 1 = message delivery (runs the envelope through
  /// Network::deliver_routed).
  struct Op {
    sim::SimTime when;
    std::uint32_t cls = 0;
    std::uint32_t seq = 0;
    std::uint64_t stream = 0;
    net::Envelope envelope;
    std::function<void()> fn;
  };
  /// Worker-to-coordinator action, replayed at the next barrier in
  /// (when, acting, seq) order.
  struct HostOp {
    sim::SimTime when;
    net::ProcId acting = net::kNoProc;
    std::uint32_t seq = 0;
    std::function<void()> fn;
  };

  /// Cache-line separated per-worker state. `inbox[t]` is written only by
  /// posting thread t (worker shard index, or slot shard_count() for the
  /// coordinator), and each slot is double-buffered by the parity of the
  /// window that will drain it: a worker posting during window k fills the
  /// parity-(k+1) buffer (the lookahead guarantees the op is due >= W_{k+1}),
  /// the coordinator posting at barrier k fills the parity-k buffer (drained
  /// by the window that starts while the workers are still parked), and the
  /// owner drains the parity-k buffers at its window-k start. Every write
  /// and drain on one buffer is therefore separated by a window barrier —
  /// that barrier is the only synchronization; no slot ever needs a lock.
  // The SPLICE_SHARD_CONFINED members are the window protocol's private
  // state: every access must happen inside a SPLICE_SHARD_ENTRY function
  // whose barrier ordering has been argued (lint rule SPL005,
  // docs/STATIC_ANALYSIS.md#spl005). TSan checks the protocol dynamically;
  // the annotation rejects un-argued access sites statically.
  struct alignas(64) Shard {
    std::uint32_t index = 0;
    SPLICE_SHARD_CONFINED sim::Simulator sim;
    SPLICE_SHARD_CONFINED obs::Recorder recorder;
    // binary heap (std::push_heap) keyed by op order
    SPLICE_SHARD_CONFINED std::vector<Op> heap;
    SPLICE_SHARD_CONFINED std::vector<std::array<std::vector<Op>, 2>> inbox;
    SPLICE_SHARD_CONFINED std::uint64_t ops_executed = 0;
  };

  static bool op_after(const Op& a, const Op& b) noexcept;
  void push_op(Shard& shard, Op&& op);
  [[nodiscard]] Op pop_op(Shard& shard);

  void worker_loop(Shard& shard, std::barrier<>& gate);
  void run_window(Shard& shard);
  void exec_op(Shard& shard, Op& op);
  /// Barrier k: drain host ops, run coordinator events <= `wk`, publish the
  /// load snapshot.
  void coordinator_phase(sim::SimTime wk);
  [[nodiscard]] bool globally_idle() const;
  [[nodiscard]] std::uint32_t posting_slot() const noexcept;
  /// Which of a slot's two buffers the posting thread must fill: the parity
  /// of the window that will drain the post (see Shard::inbox).
  [[nodiscard]] std::uint32_t posting_parity(std::uint32_t slot) const noexcept;

  Runtime& rt_;
  net::Network& network_;
  sim::Simulator& sim_;  // the coordinator's simulator (Runtime's own)
  const net::ProcId procs_;
  const std::int64_t lookahead_;

  std::vector<std::uint32_t> shard_of_;
  std::vector<Shard> shards_;

  /// Per-(directed link, lane) delivery sequence counters, indexed
  /// (from * procs + to) * 3 + lane. Lane 0: regular sends (written by the
  /// sender's shard). Bounce notices travel the reverse link (dead ->
  /// sender) and can be posted from two different threads for the same
  /// directed pair, so they split by cause: lane 1 = send-path timeout
  /// (posted by the sender's own shard), lane 2 = delivery-path bounce
  /// (posted by the destination's shard). The cause is recovered from the
  /// notice itself — a send-path notice carries its timeout stamp at the
  /// boxed original's send time, a delivery-path one stamps strictly later
  /// — so the lane, and with it the op key, is shard-count independent.
  SPLICE_SHARD_CONFINED std::vector<std::uint32_t> link_seq_;
  /// Per-acting-processor host-op counters (written by the acting
  /// processor's shard thread).
  SPLICE_SHARD_CONFINED std::vector<std::uint32_t> host_seq_;
  /// Coordinator-posted op counter (coordinator thread only).
  std::uint32_t coordinator_seq_ = 0;

  /// Staged host ops, one slot per posting worker thread (last slot:
  /// coordinator, for uniformity). Drained at each barrier.
  SPLICE_SHARD_CONFINED std::vector<std::vector<HostOp>> host_inbox_;

  /// Barrier-published scheduler load snapshot (coordinator writes while
  /// workers are parked; workers read during windows).
  std::vector<std::uint32_t> loads_;

  /// Window state, written by the coordinator between barrier phases.
  sim::SimTime window_start_;
  sim::SimTime window_end_;
  bool stop_ = false;
  std::uint64_t windows_run_ = 0;

  /// Gauge samples the obs tick diverted here (coordinator only), merged
  /// into the metrics series during merge_journals().
  struct GaugeSample {
    sim::SimTime now;
    std::uint64_t queue_depth = 0;
    std::uint64_t in_flight = 0;
    std::uint64_t residency = 0;
  };
  std::vector<GaugeSample> samples_;
};

}  // namespace splice::runtime
