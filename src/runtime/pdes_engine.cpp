#include "runtime/pdes_engine.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>
#include <tuple>
#include <utility>
#include <variant>

namespace splice::runtime {

namespace {

void validate(const core::SystemConfig& config) {
  const auto reject = [](const std::string& what) {
    throw std::invalid_argument("parallel engine: " + what);
  };
  if (config.transport.backend != net::TransportKind::kInProcess) {
    reject("only the in-process transport is supported (wire transports "
           "own their own delivery timing)");
  }
  if (config.recovery.kind == core::RecoveryKind::kRestart ||
      config.recovery.kind == core::RecoveryKind::kPeriodicGlobal) {
    reject("kRestart/kPeriodicGlobal recovery needs the classic global "
           "event order");
  }
  if (config.reclaim.gc_interval > 0 && !config.reclaim.gc_oracle) {
    reject("the legacy reclaiming gc sweep mutates remote shards; use "
           "reclaim.gc_oracle or the cancel protocol");
  }
  const net::LatencyModel& lat = config.latency;
  if (lat.base < 1) reject("latency.base must be >= 1 (it is the lookahead)");
  if (lat.per_hop < 0 || lat.per_unit < 0 || lat.local < 0) {
    reject("negative latency components break the lookahead bound");
  }
  if (lat.failure_timeout < lat.base) {
    reject("failure_timeout below latency.base breaks the lookahead bound");
  }
}

}  // namespace

// Entry: runs strictly before the worker team exists.
SPLICE_SHARD_ENTRY
PdesEngine::PdesEngine(Runtime& runtime, net::Network& network,
                       const core::SystemConfig& config)
    : rt_(runtime),
      network_(network),
      sim_(runtime.coordinator_sim()),
      procs_(config.processors),
      lookahead_(config.latency.base),
      shard_of_(config.processors),
      shards_(std::min(std::max(config.parallel.shards, 1u),
                       config.processors)),
      link_seq_(static_cast<std::size_t>(config.processors) *
                    config.processors * 3,
                0),
      host_seq_(config.processors, 0),
      host_inbox_(shards_.size() + 1),
      loads_(config.processors, 0) {
  validate(config);
  const auto nshards = static_cast<std::uint32_t>(shards_.size());
  for (net::ProcId p = 0; p < procs_; ++p) shard_of_[p] = p % nshards;
  const bool journaling = config.obs.recorder || config.collect_trace;
  for (std::uint32_t s = 0; s < nshards; ++s) {
    shards_[s].index = s;
    shards_[s].inbox.resize(nshards + 1);
    shards_[s].recorder.configure(journaling, config.obs.journal_capacity,
                                  config.collect_trace);
    shards_[s].recorder.set_processors(config.processors);
  }
}

PdesEngine::~PdesEngine() = default;

// ---- op ordering -----------------------------------------------------------

bool PdesEngine::op_after(const Op& a, const Op& b) noexcept {
  return std::tuple(a.when.ticks(), a.cls, a.stream, a.seq) >
         std::tuple(b.when.ticks(), b.cls, b.stream, b.seq);
}

// Entry: called only by the shard's owner thread on its own heap.
SPLICE_SHARD_ENTRY
void PdesEngine::push_op(Shard& shard, Op&& op) {
  shard.heap.push_back(std::move(op));
  std::push_heap(shard.heap.begin(), shard.heap.end(), op_after);
}

SPLICE_SHARD_ENTRY
PdesEngine::Op PdesEngine::pop_op(Shard& shard) {
  std::pop_heap(shard.heap.begin(), shard.heap.end(), op_after);
  Op op = std::move(shard.heap.back());
  shard.heap.pop_back();
  return op;
}

std::uint32_t PdesEngine::posting_slot() const noexcept {
  const std::uint32_t posting = sim::ctx_shard();
  return posting == sim::kNoShard ? static_cast<std::uint32_t>(shards_.size())
                                  : posting;
}

std::uint32_t PdesEngine::posting_parity(std::uint32_t slot) const noexcept {
  if (slot == shards_.size()) {
    // Coordinator posts happen at barrier k (workers parked) and are drained
    // by window k, which starts immediately after. windows_run_ == k there.
    return static_cast<std::uint32_t>(windows_run_ & 1);
  }
  // Worker posts happen during window k and are drained at window k+1: the
  // lookahead guarantees every cross-shard op posted in window k is due at
  // >= W_{k+1}. window_start_ (== k * L) is stable for the whole window.
  const auto k = static_cast<std::uint64_t>(window_start_.ticks() / lookahead_);
  return static_cast<std::uint32_t>((k + 1) & 1);
}

// ---- net::EnvelopeRouter ---------------------------------------------------

// Entry: the posting protocol proper — single-writer parity buffers,
// per-(link, lane) counters owned by the posting thread.
SPLICE_SHARD_ENTRY
void PdesEngine::route(net::Envelope&& envelope, sim::SimTime when) {
  std::uint32_t lane = 0;
  if (envelope.kind == net::MsgKind::kDeliveryFailure) {
    // Recover the bounce's cause from its timestamps (see link_seq_ in the
    // header): a send-path timeout is stamped in the same call stack as the
    // original send, a delivery-path bounce strictly later (every delivery
    // delay is >= 1 tick).
    const auto& boxed = std::get<net::EnvelopeBox>(envelope.payload);
    lane = (boxed.has_value() && (*boxed).sent_at == envelope.sent_at) ? 1 : 2;
  }
  const std::uint64_t stream =
      (static_cast<std::uint64_t>(envelope.from) * procs_ + envelope.to) * 3 +
      lane;
  Op op;
  op.when = when;
  op.cls = 1;
  op.stream = stream;
  op.seq = link_seq_[stream]++;
  op.envelope = std::move(envelope);
  Shard& dest = shards_[shard_of_[op.envelope.to]];
  const std::uint32_t slot = posting_slot();
  if (slot == dest.index) {
    push_op(dest, std::move(op));
  } else {
    dest.inbox[slot][posting_parity(slot)].push_back(std::move(op));
  }
}

// ---- EngineHooks -----------------------------------------------------------

SPLICE_SHARD_ENTRY
void PdesEngine::post_host(net::ProcId acting, std::function<void()> fn) {
  if (sim::ctx_shard() == sim::kNoShard) {
    // Already on the coordinator: run in place, inside the current event.
    fn();
    return;
  }
  assert(shard_of_[acting] == sim::ctx_shard() &&
         "host ops must be posted from the acting processor's shard");
  HostOp op;
  op.when = sim::ctx(sim_).now();
  op.acting = acting;
  op.seq = host_seq_[acting]++;
  op.fn = std::move(fn);
  host_inbox_[posting_slot()].push_back(std::move(op));
}

SPLICE_SHARD_ENTRY
void PdesEngine::post_shard(net::ProcId target, std::function<void()> fn) {
  assert(sim::ctx_shard() == sim::kNoShard &&
         "post_shard is coordinator-only (workers must be parked)");
  Op op;
  op.when = sim_.now();
  op.cls = 0;
  op.stream = 0;
  op.seq = coordinator_seq_++;
  op.fn = std::move(fn);
  Shard& dest = shards_[shard_of_[target]];
  const auto slot = static_cast<std::uint32_t>(shards_.size());
  dest.inbox[slot][posting_parity(slot)].push_back(std::move(op));
}

SPLICE_SHARD_ENTRY
void PdesEngine::with_shard_of(net::ProcId p,
                               const std::function<void()>& fn) {
  Shard& shard = shards_[shard_of_[p]];
  sim::ScopedContext ctx(&shard.sim, shard.index);
  obs::ScopedRecorder rec(shard.recorder.enabled() ? &shard.recorder
                                                   : nullptr);
  fn();
}

std::uint32_t PdesEngine::load_of(net::ProcId p) const { return loads_[p]; }

// Entry: post-run / barrier-phase aggregation (workers parked or joined).
SPLICE_SHARD_ENTRY
std::uint64_t PdesEngine::shard_events() const {
  std::uint64_t n = 0;
  for (const Shard& s : shards_) n += s.sim.events_executed() + s.ops_executed;
  return n;
}

SPLICE_SHARD_ENTRY
std::uint64_t PdesEngine::shard_pending() const {
  std::uint64_t n = 0;
  for (const Shard& s : shards_) {
    n += s.sim.pending_events() + s.heap.size();
    for (const auto& slot : s.inbox) n += slot[0].size() + slot[1].size();
  }
  for (const auto& slot : host_inbox_) n += slot.size();
  return n;
}

void PdesEngine::note_gauge_sample(sim::SimTime now, std::uint64_t queue_depth,
                                   std::uint64_t in_flight,
                                   std::uint64_t residency) {
  samples_.push_back({now, queue_depth, in_flight, residency});
}

// ---- run loop --------------------------------------------------------------

SPLICE_SHARD_ENTRY
sim::SimTime PdesEngine::horizon() const noexcept {
  sim::SimTime t = sim_.now();
  for (const Shard& s : shards_) t = std::max(t, s.sim.now());
  return t;
}

// Entry: runs between the window barriers while every worker is parked.
SPLICE_SHARD_ENTRY
void PdesEngine::coordinator_phase(sim::SimTime wk) {
  // Replay staged host ops in (when, acting, seq) order — a pure function
  // of each processor's own event history. Scheduling them via at() keeps
  // same-time insertion order in the event queue, so they interleave with
  // resident coordinator events deterministically.
  std::vector<HostOp> batch;
  for (auto& slot : host_inbox_) {
    for (HostOp& op : slot) batch.push_back(std::move(op));
    slot.clear();
  }
  std::sort(batch.begin(), batch.end(), [](const HostOp& a, const HostOp& b) {
    return std::tuple(a.when.ticks(), a.acting, a.seq) <
           std::tuple(b.when.ticks(), b.acting, b.seq);
  });
  for (HostOp& op : batch) {
    sim_.at(op.when, std::move(op.fn));
  }
  // Run every coordinator event up to and including the barrier time. The
  // inclusive bound matters: a fault-injector kill scheduled exactly at a
  // grid time must land before the window that starts there.
  while (!sim_.idle() && sim_.next_event_time() <= wk) sim_.run_one();
  // Publish the load snapshot the schedulers read during the next window.
  for (net::ProcId p = 0; p < procs_; ++p) {
    loads_[p] = rt_.processor(p).queue_length();
  }
}

SPLICE_SHARD_ENTRY
bool PdesEngine::globally_idle() const {
  if (!sim_.idle()) return false;
  return shard_pending() == 0;
}

// Entry: the owner thread itself.
SPLICE_SHARD_ENTRY
void PdesEngine::worker_loop(Shard& shard, std::barrier<>& gate) {
  while (true) {
    gate.arrive_and_wait();  // window start (coordinator published state)
    if (stop_) return;
    run_window(shard);
    gate.arrive_and_wait();  // window end (hand back to the coordinator)
  }
}

SPLICE_SHARD_ENTRY
void PdesEngine::exec_op(Shard& shard, Op& op) {
  ++shard.ops_executed;
  if (op.cls == 1) {
    network_.deliver_routed(std::move(op.envelope));
  } else {
    op.fn();
  }
}

SPLICE_SHARD_ENTRY
void PdesEngine::run_window(Shard& shard) {
  sim::ScopedContext ctx(&shard.sim, shard.index);
  obs::ScopedRecorder rec(shard.recorder.enabled() ? &shard.recorder
                                                   : nullptr);
  // Drain this window's parity buffers: everything workers posted during
  // window k-1 plus everything the coordinator staged at barrier k. The
  // buffers other workers are filling *right now* have the opposite parity.
  const auto k = static_cast<std::uint64_t>(window_start_.ticks() / lookahead_);
  for (auto& slot : shard.inbox) {
    auto& ready = slot[k & 1];
    for (Op& op : ready) push_op(shard, std::move(op));
    ready.clear();
  }
  // Normalize the clock to the window start: every pending event is >= W_k
  // (it would have run last window otherwise), so the clamp leaves now()
  // exactly at W_k for any shard count — coordinator-posted ops stamped
  // before W_k execute at W_k, not at a layout-dependent residual time.
  shard.sim.advance_to(window_start_);
  const sim::SimTime end = window_end_;
  while (true) {
    const sim::SimTime next_event = shard.sim.next_event_time();
    const sim::SimTime next_op =
        shard.heap.empty() ? sim::SimTime::max() : shard.heap.front().when;
    if (next_op <= next_event) {  // ops win ties: fixed, layout-free rule
      if (next_op >= end) break;
      Op op = pop_op(shard);
      shard.sim.advance_to(op.when);
      exec_op(shard, op);
    } else {
      if (next_event >= end) break;
      shard.sim.run_one();
    }
  }
}

SPLICE_SHARD_ENTRY
void PdesEngine::run(sim::SimTime deadline) {
  std::barrier<> gate(static_cast<std::ptrdiff_t>(shards_.size()) + 1);
  std::vector<std::thread> team;
  team.reserve(shards_.size());
  for (Shard& shard : shards_) {
    team.emplace_back([this, &shard, &gate] { worker_loop(shard, gate); });
  }
  std::int64_t k = 0;
  while (true) {
    const sim::SimTime wk(k * lookahead_);
    coordinator_phase(wk);
    if (globally_idle() || wk.ticks() > deadline.ticks()) stop_ = true;
    window_start_ = wk;
    window_end_ = sim::SimTime((k + 1) * lookahead_);
    gate.arrive_and_wait();  // release the workers into window k
    if (stop_) break;
    gate.arrive_and_wait();  // window k complete
    ++k;
    ++windows_run_;
  }
  for (std::thread& t : team) t.join();
}

// ---- journal merge ---------------------------------------------------------

// Entry: after run() joined the team; single-threaded again.
SPLICE_SHARD_ENTRY
void PdesEngine::merge_journals() {
  obs::Recorder& base = rt_.base_recorder();
  if (!base.enabled()) return;
  // Phase rank at one tick: shard events at tick T ran in window floor(T/L);
  // coordinator events at T ran at barrier ceil(T/L), which sits *after*
  // that window unless T is on the grid — where the barrier runs first.
  struct Entry {
    obs::Event event;
    std::string detail;
    std::uint32_t rank = 0;
    std::uint32_t ring = 0;
    std::uint64_t index = 0;
  };
  std::vector<Entry> entries;
  const auto harvest = [&](const obs::Recorder& ring, bool coordinator,
                           std::uint32_t ring_id) {
    std::uint64_t index = 0;
    ring.for_each([&](const obs::Event& event, const std::string& detail) {
      const bool on_grid = event.ticks % lookahead_ == 0;
      Entry entry;
      entry.event = event;
      entry.detail = detail;
      entry.rank = coordinator ? (on_grid ? 0U : 2U) : 1U;
      entry.ring = ring_id;
      entry.index = index++;
      entries.push_back(std::move(entry));
    });
  };
  harvest(base, /*coordinator=*/true, 0);
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    harvest(shards_[s].recorder, /*coordinator=*/false,
            static_cast<std::uint32_t>(s + 1));
  }
  std::sort(entries.begin(), entries.end(), [](const Entry& a,
                                               const Entry& b) {
    return std::tuple(a.event.ticks, a.rank, a.event.proc, a.ring, a.index) <
           std::tuple(b.event.ticks, b.rank, b.event.proc, b.ring, b.index);
  });
  // Rebuild the canonical recorder from the merged stream. configure()
  // resets the ring, the causal-linker maps and the metrics registry, so
  // cause edges and the metrics series re-derive from the global order;
  // stored gauge samples slot in ahead of the first strictly-later event.
  const std::uint32_t capacity = rt_.config().obs.journal_capacity;
  const bool keep_details = base.keeps_details();
  base.configure(true, capacity, keep_details);
  base.set_processors(procs_);
  auto sample = samples_.begin();
  const auto flush_samples_before = [&](std::int64_t ticks) {
    while (sample != samples_.end() && sample->now.ticks() < ticks) {
      base.metrics().sample(sample->now.ticks(), sample->queue_depth,
                            sample->in_flight, sample->residency);
      ++sample;
    }
  };
  // Fixed interleaving rule: events at tick T replay before the gauge
  // sample taken at T (the sample closes a window containing them).
  for (Entry& entry : entries) {
    flush_samples_before(entry.event.ticks);
    const obs::Event& ev = entry.event;
    obs::Recorder::Fields fields;
    fields.proc = ev.proc;
    fields.peer = ev.peer;
    fields.uid = ev.uid;
    fields.stamp = ev.stamp.is_root() ? nullptr : &ev.stamp;
    fields.cause = obs::kNoEvent;  // re-infer against the merged order
    fields.arg = ev.arg;
    if (keep_details) {
      base.record(sim::SimTime(ev.ticks), ev.kind, fields,
                  [&entry] { return std::move(entry.detail); });
    } else {
      base.record(sim::SimTime(ev.ticks), ev.kind, fields);
    }
  }
  flush_samples_before(horizon().ticks() + 1);
}

}  // namespace splice::runtime
