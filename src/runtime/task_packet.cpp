#include "runtime/task_packet.h"

#include <sstream>

namespace splice::runtime {

std::uint32_t TaskPacket::size_units() const noexcept {
  std::uint32_t units = 1 + stamp.size_units();
  for (const lang::Value& arg : args) units += arg.size_units();
  units += static_cast<std::uint32_t>(ancestors.size());
  return units;
}

std::string TaskPacket::describe() const {
  std::ostringstream out;
  out << "packet{fn=" << fn << " stamp=" << stamp.to_string() << " args=[";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i) out << " ";
    out << args[i].to_string();
  }
  out << "]";
  if (replica != 0) out << " replica=" << replica;
  out << "}";
  return out.str();
}

}  // namespace splice::runtime
