#include "runtime/level_stamp.h"

#include <cassert>
#include <sstream>

namespace splice::runtime {

LevelStamp LevelStamp::child(StampDigit digit) const {
  Digits digits = digits_;
  digits.push_back(digit);
  return LevelStamp(std::move(digits));
}

LevelStamp LevelStamp::parent() const {
  assert(!is_root());
  return LevelStamp(Digits(digits_.begin(), digits_.end() - 1));
}

LevelStamp LevelStamp::truncated(std::size_t depth) const {
  assert(depth <= digits_.size());
  return LevelStamp(Digits(digits_.begin(), digits_.begin() + depth));
}

bool LevelStamp::is_ancestor_of(const LevelStamp& other) const noexcept {
  if (digits_.size() >= other.digits_.size()) return false;
  for (std::size_t i = 0; i < digits_.size(); ++i) {
    if (digits_[i] != other.digits_[i]) return false;
  }
  return true;
}

std::size_t LevelStamp::common_prefix(const LevelStamp& other) const noexcept {
  const std::size_t n = std::min(digits_.size(), other.digits_.size());
  std::size_t i = 0;
  while (i < n && digits_[i] == other.digits_[i]) ++i;
  return i;
}

std::string LevelStamp::to_string() const {
  if (digits_.empty()) return "<root>";
  std::ostringstream out;
  out << "<";
  for (std::size_t i = 0; i < digits_.size(); ++i) {
    if (i) out << ".";
    out << digits_[i];
  }
  out << ">";
  return out.str();
}

std::size_t LevelStamp::Hash::operator()(const LevelStamp& s) const noexcept {
  // FNV-1a over the digit words.
  std::size_t h = 14695981039346656037ULL;
  for (StampDigit d : s.digits_) {
    h ^= d;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace splice::runtime
