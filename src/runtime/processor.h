// A partitioned-memory processing node.
//
// Implements the §4.2 protocol loop:
//
//   LOOP CASE received packet OF
//     forward result:   interpret the level stamp (child / grandchild /
//                       others), place data, resume tasks, create
//                       step-parents, relay orphan results
//     task packet:      execute; DEMAND_IT unevaluated functions; suspend
//                       when blocked; send the result to the parent (or
//                       its ancestors when the parent is dead)
//     error-detection:  hand to the recovery policy (respawn topmost
//                       checkpoints etc.)
//   ENDCASE ENDLOOP
//
// plus the plumbing the paper assumes: spawn acknowledgements, delivery-
// failure timeouts, heartbeats, and the functional checkpoint table.
//
// Execution model: one task step (a body scan) runs at a time; its abstract
// cost advances the simulated clock. Steps queue FIFO.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <memory>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "checkpoint/checkpoint_table.h"
#include "core/metrics.h"
#include "net/network.h"
#include "runtime/task.h"
#include "runtime/task_packet.h"
#include "store/durable_store.h"
#include "store/state_transfer.h"
#include "util/slab.h"

namespace splice::runtime {

class Runtime;

class Processor {
 public:
  /// Task objects and the uid-map nodes that index them come from
  /// processor-local slab pools: tasks churn at every spawn/complete, and on
  /// the sharded engine per-processor ownership makes the pools lock-free.
  using TaskPtr = util::SlabPool<Task>::Ptr;
  using TaskMap =
      std::unordered_map<TaskUid, TaskPtr, std::hash<TaskUid>,
                         std::equal_to<TaskUid>,
                         util::PoolAllocator<std::pair<const TaskUid, TaskPtr>>>;

  Processor(Runtime& rt, net::ProcId id);

  [[nodiscard]] net::ProcId id() const noexcept { return id_; }

  /// Network receiver: the protocol loop's dispatch.
  void handle(net::Envelope&& env);

  /// Accept a task packet (from the network or the super-root's host
  /// channel): create the task, acknowledge, queue its first scan. Returns
  /// the new task's uid (kNoTask when dead).
  TaskUid accept_packet(TaskPacket packet);

  // ---- execution ----------------------------------------------------------
  void enqueue_scan(TaskUid uid);
  [[nodiscard]] std::uint32_t queue_length() const noexcept {
    return static_cast<std::uint32_t>(step_queue_.size()) +
           (executing_ ? 1U : 0U);
  }

  // ---- liveness -----------------------------------------------------------
  /// Crash: lose all volatile state (tasks, queue, table). Fail-silent.
  void nuke();
  [[nodiscard]] bool crashed() const noexcept { return dead_; }

  /// Repair (crash-recovery model). Cold: come back blank. Warm (runtime
  /// warm-rejoin mode): replay the durable checkpoint log into the table,
  /// then request survivor-assisted state transfer. Either way the dead
  /// flag clears, a rejoin notice broadcasts so peers drop this node from
  /// their dead sets, and heartbeats restart.
  void revive();

  /// Record that `dead` failed. Idempotent. When `direct_detection`, this
  /// processor is the detector and broadcasts error-detection packets.
  void learn_dead(net::ProcId dead, bool direct_detection);
  /// Record that `back` rejoined: forget it was dead so sends, relays and
  /// heartbeats toward it resume.
  void learn_alive(net::ProcId back);
  [[nodiscard]] bool knows_dead(net::ProcId p) const {
    return known_dead_.contains(p);
  }

  // ---- services used by recovery policies ---------------------------------
  [[nodiscard]] Task* find_task(TaskUid uid);
  /// Live (not completed/aborted) local task with this exact stamp, or
  /// nullptr. Warm rejoin re-creates tasks under fresh uids; stamp identity
  /// is what survives the crash (§3.1: names come from program structure).
  [[nodiscard]] Task* find_task_by_stamp(const LevelStamp& stamp);
  /// Stamp-addressed cancel resolution: the live local task matching
  /// (stamp, replica) that carries exactly `parent` as its parent ref and
  /// was accepted strictly before `before` (lowest uid wins for
  /// determinism). The parent filter makes the match unambiguous — uids
  /// are never reused, so only the issuer's own superseded child can
  /// match; the time fence additionally protects the issuer's replacement
  /// twin (same parent ref, spawned after the cancel).
  [[nodiscard]] Task* find_task_by_stamp_replica(const LevelStamp& stamp,
                                                 std::uint32_t replica,
                                                 TaskRef parent,
                                                 sim::SimTime before);
  /// Reissue a replay-restored checkpoint whose owner task died with this
  /// node and was not re-accepted: send the retained packet to a fresh
  /// destination and re-record it. The result flows to the old parent ref
  /// and is salvaged by stamp (warm) or by ancestor escalation (splice).
  void respawn_from_record(checkpoint::CheckpointRecord record,
                           std::string_view reason);
  /// Reissue the child of `slot` from its retained packet. `as_twin` marks
  /// a splice step-parent (enables orphan-result inheritance).
  void respawn_slot(Task& owner, CallSlot& slot, bool as_twin,
                    std::string_view reason);
  void abort_task(TaskUid uid, std::string_view reason);
  /// Cancel a local task: abort it, release the checkpoint-table entries it
  /// retained for its own children, and forward kCancel messages down every
  /// outstanding call slot so the whole duplicate subtree converges by
  /// message propagation (the protocol replacement for the old global
  /// orphan-GC sweep).
  void cancel_task(TaskUid uid, std::string_view reason);
  /// Deliver a direct-child result into a live local task (shared by the
  /// network path and policy relays).
  void deliver_parent_result(Task& task, const ResultMsg& msg);
  /// Relay an orphan result to the slot's (step-)child now, or buffer it
  /// until the twin's ack arrives.
  void relay_or_buffer(Task& ancestor, CallSlot& slot, ResultMsg msg);
  /// Send a result message into the network (policy escalation helper).
  void send_result_msg(ResultMsg msg, net::ProcId to);
  /// Abort every live task matching a predicate; returns count.
  template <typename Pred>
  std::size_t abort_tasks_if(Pred pred, std::string_view reason) {
    std::vector<TaskUid> victims;
    for (auto& [uid, task] : tasks_) {
      if (task->state() != TaskState::kCompleted &&
          task->state() != TaskState::kAborted && pred(*task)) {
        victims.push_back(uid);
      }
    }
    for (TaskUid uid : victims) abort_task(uid, reason);
    return victims.size();
  }
  /// Cancel every live task matching a predicate (abort + checkpoint
  /// release + cancels forwarded to children); returns count. The
  /// cancellation-protocol variant of abort_tasks_if: a doomed lineage's
  /// descendants on other processors are reclaimed by message instead of
  /// computing to run end.
  template <typename Pred>
  std::size_t cancel_tasks_if(Pred pred, std::string_view reason) {
    std::vector<TaskUid> victims;
    for (auto& [uid, task] : tasks_) {
      if (task->state() != TaskState::kCompleted &&
          task->state() != TaskState::kAborted && pred(*task)) {
        victims.push_back(uid);
      }
    }
    std::sort(victims.begin(), victims.end());
    for (TaskUid uid : victims) cancel_task(uid, reason);
    return victims.size();
  }
  /// Iterate live tasks (policies use this for reissue sweeps).
  template <typename Fn>
  void for_each_task(Fn fn) {
    // Snapshot uids first: respawns may mutate the table.
    std::vector<TaskUid> uids;
    uids.reserve(tasks_.size());
    for (auto& [uid, task] : tasks_) uids.push_back(uid);
    for (TaskUid uid : uids) {
      if (Task* task = find_task(uid)) fn(*task);
    }
  }

  [[nodiscard]] checkpoint::CheckpointTable& table() noexcept { return table_; }
  [[nodiscard]] Runtime& runtime() noexcept { return rt_; }
  [[nodiscard]] core::Counters& counters() noexcept { return counters_; }
  [[nodiscard]] const store::DurableStore& durable_store() const noexcept {
    return store_;
  }
  /// True from a warm revive until the next crash: enables stamp-matched
  /// delivery of results addressed to this node's previous incarnation.
  [[nodiscard]] bool warm_rejoined() const noexcept { return warm_rejoined_; }
  /// Crash count of this node — 0 for the first life, bumped per crash.
  /// splice_noded tags its log lines with it.
  [[nodiscard]] std::uint64_t incarnation() const noexcept {
    return incarnation_;
  }
  /// While warm catch-up is streaming, park a result whose consumer has not
  /// been re-hosted yet; it re-delivers as transfers land. Returns false
  /// once catch-up is over (the caller discards normally).
  bool buffer_warm_result(ResultMsg msg);
  /// Does this node hold anything a death of `dead` obligates it to act
  /// on — a checkpoint against it, a task parented there, or a slot whose
  /// child lives there? Gates warm-mode deferral so observers with no
  /// stake neither schedule grace timers nor count deferrals.
  [[nodiscard]] bool has_stake_in(net::ProcId dead) const;

  /// This node's share of the cancel-retransmission backoff books (see
  /// Runtime::cancel_backoff_pending for the aggregate view and why the
  /// storage is per-processor).
  void note_cancel_backoff(const LevelStamp& stamp, int delta);
  [[nodiscard]] bool cancel_backoff_pending(const LevelStamp& stamp) const {
    return cancels_in_backoff_.contains(stamp);
  }

  // ---- periodic-global baseline support ------------------------------------
  void freeze();
  void unfreeze();
  [[nodiscard]] bool frozen() const noexcept { return frozen_; }
  /// Logical state snapshot: value-copies of all live tasks.
  [[nodiscard]] std::vector<Task> snapshot_tasks() const;
  /// Replace all volatile state with `tasks` and requeue them.
  void restore_tasks(std::vector<Task> tasks);
  /// Add `tasks` to the live set without disturbing resident work (warm-
  /// rejoin fallback: a parked slice redistributed over running survivors).
  void adopt_tasks(std::vector<Task> tasks);
  [[nodiscard]] std::uint64_t state_units() const;

  // ---- end-of-run accounting ----------------------------------------------
  [[nodiscard]] std::uint64_t live_task_count() const noexcept {
    return tasks_.size();
  }

  void start_heartbeats();

 private:
  // ---- message dispatch ---------------------------------------------------
  // handle() std::visits the closed payload variant over this overload set.
  // There is deliberately no catch-all template: adding a variant
  // alternative refuses to compile until a handler exists here, so the wire
  // codec (net/codec.cpp) and the dispatcher stay exhaustive at the same
  // single point — the variant in net/message.h.
  void on_payload(net::Envelope& env, std::monostate&&);
  void on_payload(net::Envelope& env, TaskPacket&& msg);
  void on_payload(net::Envelope& env, AckMsg&& msg);
  void on_payload(net::Envelope& env, ResultMsg&& msg);
  void on_payload(net::Envelope& env, ErrorMsg&& msg);
  void on_payload(net::Envelope& env, HeartbeatMsg&& msg);
  void on_payload(net::Envelope& env, RejoinMsg&& msg);
  void on_payload(net::Envelope& env, LoadMsg&& msg);
  void on_payload(net::Envelope& env, ControlMsg&& msg);
  void on_payload(net::Envelope& env, CancelMsg&& msg);
  void on_payload(net::Envelope& env, store::StateRequestMsg&& msg);
  void on_payload(net::Envelope& env, store::StateChunkMsg&& msg);
  void on_payload(net::Envelope& env, net::EnvelopeBox&& box);

  void start_next_step();
  void finish_scan(TaskUid uid, ScanOutcome& outcome);
  void spawn_child(Task& owner, SpawnRequest request);
  void handle_cancel(CancelMsg msg);
  /// Emit one kCancel naming (stamp, replica) — uid-exact when the issuer
  /// holds an acknowledged pointer, else (stamp, parent-instance)-addressed
  /// with the issue time as incarnation fence.
  void send_cancel(const LevelStamp& stamp, std::uint32_t replica,
                   TaskUid uid, TaskRef parent, net::ProcId to);
  /// Cancel every instance this slot currently points at (acked ones by
  /// uid, in-flight/never-acked ones by (stamp, parent ref) at their send
  /// destination). Called when the slot's lineage is superseded — a
  /// respawn replaces it, a salvaged result resolves it, or the owning
  /// task is itself cancelled. Replicated depths are exempt (their copies
  /// are the redundancy) and destinations known dead are skipped (nothing
  /// lives there to reclaim).
  void cancel_slot_instances(const Task& owner, const CallSlot& slot);
  void handle_state_request(store::StateRequestMsg msg);
  void handle_state_chunk(net::ProcId from, store::StateChunkMsg msg);
  /// Re-host one transferred task packet: accept it, then pre-link its call
  /// slots from replay-restored child checkpoints so surviving orphan
  /// subtrees are awaited instead of recomputed.
  void accept_transferred_packet(TaskPacket packet);
  void note_transfer_peer_done(net::ProcId peer);
  void complete_catch_up();
  void flush_warm_results();
  /// Send packet replicas, record the functional checkpoint. The packet
  /// must already be retained in the slot.
  void send_packet(Task& owner, CallSlot& slot);
  void complete_task(TaskUid uid, const lang::Value& value);
  void handle_result(ResultMsg msg);
  void handle_ack(AckMsg msg);
  void handle_delivery_failure(net::Envelope original);
  /// Re-send a bounced protocol message after a backoff while its
  /// destination stays alive — the liveness net for lossy/gray links, for
  /// message kinds that have no payload-level reissue path of their own.
  void retransmit_after_backoff(net::Envelope env);
  void do_heartbeat();
  void resume_after_fill(Task& task);

  Runtime& rt_;
  net::ProcId id_;
  /// Allocation substrate for the task map's hash nodes (and any other
  /// small per-processor container that opts in). Declared before every
  /// container that allocates from it, so destruction order releases the
  /// containers first.
  util::SlabArena arena_;
  util::SlabPool<Task> task_pool_;
  TaskMap tasks_;
  std::deque<TaskUid> step_queue_;
  bool executing_ = false;
  /// Outcome of the step in flight (valid while executing_): parked here so
  /// the step-completion event's capture stays within EventFn's inline
  /// buffer. Single-occupancy is guaranteed by the one-step-at-a-time rule.
  ScanOutcome executing_outcome_;
  bool frozen_ = false;
  bool dead_ = false;
  std::unordered_set<net::ProcId> known_dead_;
  checkpoint::CheckpointTable table_;
  store::DurableStore store_;
  store::StateStreamer streamer_;
  /// Peers still owed a final state chunk during warm catch-up.
  std::unordered_set<net::ProcId> awaiting_transfer_;
  /// Results that raced the transfer of their consumer (warm catch-up).
  std::vector<ResultMsg> warm_pending_results_;
  bool warm_rejoined_ = false;
  sim::SimTime revive_time_;
  core::Counters counters_;
  std::uint64_t heartbeat_seq_ = 0;
  /// Bumped on every crash; heartbeat chains scheduled by an earlier
  /// incarnation abandon themselves instead of beating alongside the chain
  /// the revived node starts.
  std::uint64_t incarnation_ = 0;
  /// Cancels from this node waiting out a lossy-link retransmission backoff
  /// (keyed by lineage stamp; see Runtime::cancel_backoff_pending).
  std::unordered_map<LevelStamp, std::uint32_t, LevelStamp::Hash>
      cancels_in_backoff_;
  /// Uid watermark of this incarnation: every task this life hosts has a
  /// uid at or above it (uids are global and monotone). An ack addressed
  /// to a parent uid *below* the watermark names a crash casualty, not a
  /// cancelled task — its branch may have been legitimately reissued from
  /// a restored checkpoint record, so the ack-of-corpse reply must not
  /// fire (the pre-cancellation behaviour was to ignore such acks).
  TaskUid incarnation_uid_floor_ = 0;
};

}  // namespace splice::runtime
