#include "runtime/task.h"

#include <algorithm>
#include <cassert>

namespace splice::runtime {

std::string_view to_string(TaskState state) noexcept {
  switch (state) {
    case TaskState::kQueued:
      return "queued";
    case TaskState::kRunning:
      return "running";
    case TaskState::kWaiting:
      return "waiting";
    case TaskState::kCompleted:
      return "completed";
    case TaskState::kAborted:
      return "aborted";
  }
  return "?";
}

ScanOutcome Task::scan(const lang::Program& program) {
  ++scans_;
  ScanOutcome outcome;
  const lang::FunctionDef& def = program.function(packet_.fn);
  RequestedSites requested;
  outcome.result = eval(program, def, def.root, outcome, requested);
  // Task setup / resume overhead: a few ticks per scan on top of prim work.
  outcome.cost += 2;
  return outcome;
}

std::optional<lang::Value> Task::eval(const lang::Program& program,
                                      const lang::FunctionDef& def,
                                      lang::ExprId expr, ScanOutcome& outcome,
                                      RequestedSites& requested) {
  const lang::ExprNode& node = def.nodes[expr];
  switch (node.kind) {
    case lang::ExprKind::kConst:
      return node.literal;
    case lang::ExprKind::kArg:
      return packet_.args[node.arg_index];
    case lang::ExprKind::kPrim: {
      // Evaluate every operand even after one suspends, so all ready calls
      // under this prim are demanded in the same scan (maximal parallelism).
      util::SmallVec<lang::Value, 4> operands;
      operands.reserve(node.children.size());
      bool complete = true;
      for (lang::ExprId child : node.children) {
        auto v = eval(program, def, child, outcome, requested);
        if (v.has_value()) {
          operands.push_back(std::move(*v));
        } else {
          complete = false;
        }
      }
      if (!complete) return std::nullopt;
      return lang::apply_prim(node.op, {operands.data(), operands.size()},
                              &outcome.cost);
    }
    case lang::ExprKind::kIf: {
      auto cond = eval(program, def, node.children[0], outcome, requested);
      if (!cond.has_value()) return std::nullopt;
      ++outcome.cost;
      const lang::ExprId branch =
          cond->truthy() ? node.children[1] : node.children[2];
      return eval(program, def, branch, outcome, requested);
    }
    case lang::ExprKind::kCall: {
      if (const CallSlot* existing = find_slot(expr);
          existing != nullptr && existing->resolved()) {
        return existing->result;
      }
      // Evaluate arguments; nested calls inside them are demanded first.
      TaskPacket::Args call_args;
      call_args.reserve(node.children.size());
      bool args_ready = true;
      for (lang::ExprId child : node.children) {
        auto v = eval(program, def, child, outcome, requested);
        if (v.has_value()) {
          call_args.push_back(std::move(*v));
        } else {
          args_ready = false;
        }
      }
      if (!args_ready) return std::nullopt;
      const CallSlot* s = find_slot(expr);
      const bool already_spawned = s != nullptr && s->spawned;
      const bool already_requested =
          std::find(requested.begin(), requested.end(), expr) !=
          requested.end();
      if (!already_spawned && !already_requested) {
        requested.push_back(expr);
        outcome.spawns.push_back(
            SpawnRequest{expr, node.callee, std::move(call_args)});
      }
      return std::nullopt;  // waiting for the child's result
    }
  }
  assert(false && "bad expr kind");
  return std::nullopt;
}

void Task::note_spawned(lang::ExprId site, TaskPacket retained) {
  CallSlot& s = slot(site);
  s.spawned = true;
  s.retained = std::move(retained);
}

bool Task::note_ack(lang::ExprId site, TaskRef child, std::uint32_t replica,
                    std::uint32_t lineage) {
  CallSlot& s = slot(site);
  if (lineage < s.respawns) return false;  // superseded spawn generation
  if (s.child_procs.size() <= replica) {
    s.child_procs.resize(replica + 1, net::kNoProc);
    s.child_uids.resize(replica + 1, kNoTask);
  }
  s.child_procs[replica] = child.proc;
  s.child_uids[replica] = child.uid;
  return true;
}

bool Task::deliver_result(lang::ExprId site, const lang::Value& value,
                          std::uint32_t quorum) {
  CallSlot& s = slot(site);
  if (s.resolved()) return false;  // duplicate (cases 6-8): ignored
  ++s.votes;
  if (s.votes >= quorum) {
    s.result = value;
    return true;
  }
  return false;
}

void Task::prefill(lang::ExprId site, const lang::Value& value) {
  CallSlot& s = slot(site);
  if (s.resolved()) return;
  s.result = value;
}

CallSlot* Task::find_slot(lang::ExprId site) {
  for (CallSlot& s : slots_) {
    if (s.site == site) return &s;
  }
  return nullptr;
}

const CallSlot* Task::find_slot(lang::ExprId site) const {
  for (const CallSlot& s : slots_) {
    if (s.site == site) return &s;
  }
  return nullptr;
}

CallSlot& Task::slot(lang::ExprId site) {
  if (CallSlot* existing = find_slot(site)) return *existing;
  slots_.push_back(CallSlot{});
  slots_.back().site = site;
  return slots_.back();
}

std::uint32_t Task::outstanding_children() const noexcept {
  std::uint32_t n = 0;
  for (const CallSlot& s : slots_) {
    if (s.outstanding()) ++n;
  }
  return n;
}

std::uint32_t Task::state_units() const noexcept {
  std::uint32_t units = packet_.size_units();
  for (const CallSlot& s : slots_) {
    units += 1;
    if (s.result.has_value()) units += s.result->size_units();
    if (s.spawned) units += s.retained.size_units();
  }
  return units;
}

}  // namespace splice::runtime
