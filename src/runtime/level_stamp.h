// Level stamps (§3.1 of the paper).
//
// "Assume that the root task carries a null level number, a task at level
//  one will bear a unique one digit identification. Tasks in subsequent
//  levels are stamped by appending one more digit to the number of their
//  parents."
//
// A stamp is the path of call-site identifiers from the root; uniqueness is
// guaranteed by program structure, not by time. Digits are the ExprId of
// the Call node in the parent's body, which makes the stamp of a recovery
// twin's children equal to the stamps of the dead task's children — the
// property splice recovery keys on.
//
// Stamps ride in every protocol message, so their digit strings live in a
// small-buffer vector: copying a stamp of depth <= kInlineDepth (every
// workload in EXPERIMENTS.md) costs zero heap allocations.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/small_vec.h"

namespace splice::runtime {

using StampDigit = std::uint32_t;

class LevelStamp {
 public:
  /// Digit strings up to this depth are stored inline (no heap).
  static constexpr std::size_t kInlineDepth = 12;
  using Digits = util::SmallVec<StampDigit, kInlineDepth>;

  /// Root stamp: the null (empty) level number.
  LevelStamp() = default;
  explicit LevelStamp(Digits digits) : digits_(std::move(digits)) {}

  [[nodiscard]] static LevelStamp root() { return LevelStamp{}; }

  /// Stamp of the child spawned from call site `digit`.
  [[nodiscard]] LevelStamp child(StampDigit digit) const;

  /// Stamp of the parent. Requires !is_root().
  [[nodiscard]] LevelStamp parent() const;

  /// Stamp of the ancestor at `depth` (digit-string prefix of that length).
  /// Requires depth <= depth().
  [[nodiscard]] LevelStamp truncated(std::size_t depth) const;

  [[nodiscard]] bool is_root() const noexcept { return digits_.empty(); }
  [[nodiscard]] std::size_t depth() const noexcept { return digits_.size(); }
  [[nodiscard]] const Digits& digits() const noexcept { return digits_; }
  [[nodiscard]] StampDigit last() const { return digits_.back(); }

  /// Strict ancestor test: *this is a proper prefix of other.
  [[nodiscard]] bool is_ancestor_of(const LevelStamp& other) const noexcept;
  /// Strict descendant test.
  [[nodiscard]] bool is_descendant_of(const LevelStamp& other) const noexcept {
    return other.is_ancestor_of(*this);
  }
  /// Ancestor-or-equal.
  [[nodiscard]] bool subsumes(const LevelStamp& other) const noexcept {
    return *this == other || is_ancestor_of(other);
  }

  /// Length of the longest common prefix (tree distance helper).
  [[nodiscard]] std::size_t common_prefix(const LevelStamp& other)
      const noexcept;

  [[nodiscard]] bool operator==(const LevelStamp&) const = default;
  /// Lexicographic; gives a deterministic total order for containers.
  [[nodiscard]] bool operator<(const LevelStamp& other) const noexcept {
    return digits_ < other.digits_;
  }

  /// Wire size in abstract units (a stamp is a handful of integers).
  [[nodiscard]] std::uint32_t size_units() const noexcept { return 1; }

  [[nodiscard]] std::string to_string() const;

  struct Hash {
    [[nodiscard]] std::size_t operator()(const LevelStamp& s) const noexcept;
  };

 private:
  Digits digits_;
};

}  // namespace splice::runtime
