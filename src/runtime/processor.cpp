#include "runtime/processor.h"

#include <algorithm>
#include <cassert>
#include <variant>

#include "runtime/runtime.h"
#include "util/logging.h"

namespace splice::runtime {

using net::Envelope;
using net::MsgKind;

namespace {
store::StateStreamer::Env make_streamer_env(Processor& self, Runtime& rt) {
  store::StateStreamer::Env env;
  env.chunk_records = rt.config().store.chunk_records;
  env.chunk_interval = sim::SimTime(rt.config().store.chunk_interval);
  env.send = [&self, &rt](net::ProcId to, store::StateChunkMsg chunk) {
    if (self.crashed()) return;
    ++self.counters().state_chunks_sent;
    rt.recorder().record(rt.sim().now(), obs::EventKind::kStateChunk,
                         {.proc = self.id(),
                          .peer = to,
                          .arg = static_cast<std::uint64_t>(
                              chunk.packets.size())},
                         [&] {
                           return "seq " + std::to_string(chunk.seq) + " (" +
                                  std::to_string(chunk.packets.size()) +
                                  " packets" +
                                  (chunk.last ? ", last)" : ")") + " -> P" +
                                  std::to_string(to);
                         });
    Envelope env_out;
    env_out.kind = MsgKind::kStateChunk;
    env_out.from = self.id();
    env_out.to = to;
    env_out.size_units = chunk.size_units();
    env_out.payload = std::move(chunk);
    rt.network().send(std::move(env_out));
  };
  env.after = [&rt](sim::SimTime delay, std::function<void()> fn) {
    rt.sim().after(delay, std::move(fn));
  };
  env.alive = [&rt](net::ProcId p) { return rt.network().alive(p); };
  env.packets_against = [&self](net::ProcId rejoiner) {
    std::vector<TaskPacket> packets;
    for (const checkpoint::CheckpointRecord& record :
         self.table().entry(rejoiner)) {
      packets.push_back(record.packet);
    }
    return packets;
  };
  env.still_checkpointed = [&self](net::ProcId rejoiner,
                                   const LevelStamp& stamp) {
    return self.table().contains(rejoiner, stamp);
  };
  env.known_dead = [&self, &rt] {
    // Sorted so the chunk contents — and therefore the whole run — stay a
    // pure function of the seed (the dead set is an unordered container).
    std::vector<net::ProcId> dead;
    for (net::ProcId p = 0; p < rt.network().size(); ++p) {
      if (p != self.id() && self.knows_dead(p)) dead.push_back(p);
    }
    return dead;
  };
  return env;
}
}  // namespace

Processor::Processor(Runtime& rt, net::ProcId id)
    : rt_(rt),
      id_(id),
      tasks_(util::PoolAllocator<std::pair<const TaskUid, TaskPtr>>(arena_)),
      table_(id, rt.config().processors),
      store_(id, rt.config().store.model, rt.config().store.survive_p,
             rt.config().seed),
      streamer_(make_streamer_env(*this, rt)) {
  if (store_.enabled()) table_.set_listener(&store_);
}

// ---------------------------------------------------------------------------
// Protocol loop dispatch
// ---------------------------------------------------------------------------

void Processor::handle(Envelope&& env) {
  if (dead_) return;  // fail-silent: a dead node processes nothing
  assert(net::payload_consistent(env.kind, env.payload));
  // `env` may alias transport-owned storage (stable for the duration of
  // this call). Each overload consumes the payload by move while evaluating
  // its handler's *arguments*, so handlers own their data outright and
  // never hold references into that storage.
  std::visit(
      [&](auto&& payload) {
        on_payload(env, std::forward<decltype(payload)>(payload));
      },
      std::move(env.payload));
}

void Processor::on_payload(Envelope&, std::monostate&&) {
  // kFetchData / kDataReply / kCheckpointXfer carry no modelled payload:
  // "if a processor receives a packet and cannot find a proper rule to
  // handle it, the processor simply ignores the received message."
}

void Processor::on_payload(Envelope&, TaskPacket&& msg) {
  accept_packet(std::move(msg));
}

void Processor::on_payload(Envelope&, AckMsg&& msg) {
  handle_ack(std::move(msg));
}

void Processor::on_payload(Envelope&, ResultMsg&& msg) {
  handle_result(std::move(msg));
}

void Processor::on_payload(Envelope&, ErrorMsg&& msg) {
  // A broadcast that raced a repair is stale: the accused node already
  // revived (and announced it), so don't re-mark it dead. Across OS
  // processes there is no liveness oracle to consult — trust the reporter;
  // a rejoin notice from the repaired node clears the verdict later.
  if (rt_.network().distributed() || !rt_.network().alive(msg.dead)) {
    learn_dead(msg.dead, /*direct_detection=*/false);
  }
}

void Processor::on_payload(Envelope&, HeartbeatMsg&&) {
  // Receipt alone proves liveness; detection watches for *absence*.
}

void Processor::on_payload(Envelope&, RejoinMsg&& msg) { learn_alive(msg.who); }

void Processor::on_payload(Envelope&, LoadMsg&&) {
  // Load gossip feeds the scheduler via Runtime, not the protocol loop.
}

void Processor::on_payload(Envelope&, ControlMsg&& msg) {
  // kShutdown ends a multi-process rank's driver loop; the other control
  // kinds are point-to-point runtime traffic handled at their call sites.
  if (msg.kind == ControlKind::kShutdown) rt_.request_shutdown();
}

void Processor::on_payload(Envelope&, CancelMsg&& msg) {
  handle_cancel(std::move(msg));
}

void Processor::on_payload(Envelope&, store::StateRequestMsg&& msg) {
  handle_state_request(std::move(msg));
}

void Processor::on_payload(Envelope& env, store::StateChunkMsg&& msg) {
  handle_state_chunk(env.from, std::move(msg));
}

void Processor::on_payload(Envelope&, net::EnvelopeBox&& box) {
  handle_delivery_failure(std::move(*box));
}

// ---------------------------------------------------------------------------
// Task intake & execution
// ---------------------------------------------------------------------------

TaskUid Processor::accept_packet(TaskPacket packet) {
  if (dead_) return kNoTask;
  if (const net::LinkFaultModel* faults = rt_.network().link_faults();
      faults != nullptr && faults->may_duplicate() && !packet.stamp.is_root()) {
    // Links may deliver twice. A co-resident live task with identical
    // (stamp, replica, parent, lineage) can only be the earlier delivery of
    // the same wire message — every respawn bumps lineage, so a legitimate
    // replacement never matches. Drop the copy before it executes (and
    // before it counts as created: it is not a new task, it is the same
    // send arriving again).
    if (Task* first = find_task_by_stamp_replica(
            packet.stamp, packet.replica, packet.parent(), sim::SimTime::max());
        first != nullptr && first->packet().lineage == packet.lineage) {
      ++counters_.wire_dups_discarded;
      return kNoTask;
    }
  }
  ++counters_.tasks_created;
  const TaskUid uid = rt_.next_uid(id_);
  const LevelStamp stamp = packet.stamp;
  const TaskRef parent = packet.parent();
  const lang::ExprId call_site = packet.call_site;
  const std::uint32_t replica = packet.replica;
  const std::uint32_t lineage = packet.lineage;
  const lang::FuncId fn = packet.fn;
  if (rt_.config().reclaim.cancellation && lineage > 0 && !stamp.is_root() &&
      rt_.replication_for(stamp.depth()) == 1) {
    // A recovery respawn landed here. If an older instance of the same
    // (stamp, replica) *from the same parent instance* is co-resident, it
    // is the superseded original of the lineage this packet replaces —
    // reclaim it locally before the replacement starts. (Gated on
    // lineage > 0 so the hot first-spawn path pays nothing for the scan;
    // parent-filtered so a sibling lineage's copy is never touched.)
    if (Task* older = find_task_by_stamp_replica(stamp, replica, parent,
                                                 rt_.sim().now())) {
      cancel_task(older->uid(), "cancelled: superseded by local respawn");
    }
  }
  tasks_.emplace(uid,
                 task_pool_.make(uid, std::move(packet), rt_.sim().now()));

  rt_.recorder().record(rt_.sim().now(), obs::EventKind::kPlace,
                        {.proc = id_, .uid = uid, .stamp = &stamp}, [&] {
                          return rt_.program().function(fn).name + " " +
                                 stamp.to_string() +
                                 " uid=" + std::to_string(uid);
                        });

  // Positive acknowledgement: establishes the parent-to-child pointer
  // (Fig. 6 state b -> c).
  AckMsg ack;
  ack.stamp = stamp;
  ack.call_site = call_site;
  ack.parent = parent;
  ack.child = TaskRef{id_, uid};
  ack.replica = replica;
  ack.lineage = lineage;
  if (parent.proc == net::kNoProc) {
    rt_.super_root_ack(ack, id_);
  } else {
    Envelope env;
    env.kind = MsgKind::kSpawnAck;
    env.from = id_;
    env.to = parent.proc;
    env.size_units = 1;
    env.payload = ack;
    rt_.network().send(std::move(env));
  }
  enqueue_scan(uid);
  return uid;
}

void Processor::enqueue_scan(TaskUid uid) {
  Task* task = find_task(uid);
  if (task == nullptr) return;
  task->set_state(TaskState::kQueued);
  step_queue_.push_back(uid);
  start_next_step();
}

void Processor::start_next_step() {
  if (dead_ || frozen_ || executing_) return;
  // Skip stale queue entries (aborted / completed tasks).
  while (!step_queue_.empty()) {
    const TaskUid uid = step_queue_.front();
    Task* task = find_task(uid);
    if (task == nullptr || task->state() != TaskState::kQueued) {
      step_queue_.pop_front();
      continue;
    }
    step_queue_.pop_front();
    task->set_state(TaskState::kRunning);
    task->set_dirty(false);
    if (rt_.has_triggers() && task->scan_count() == 0) {
      rt_.fire_trigger("exec:" + rt_.program().function(task->packet().fn).name);
      // The trigger may have synchronously killed this processor (nuke()
      // frees every task): re-validate before touching `task` again.
      if (dead_) return;
      task = find_task(uid);
      if (task == nullptr || task->state() != TaskState::kRunning) continue;
    }
    // The scan's outcome is computed now; its cost advances the clock and
    // its effects (sends, completion) apply when the step finishes.
    ScanOutcome outcome = task->scan(rt_.program());
    ++counters_.scans;
    const auto& cfg = rt_.config();
    const std::int64_t cost =
        1 + static_cast<std::int64_t>(outcome.cost) * cfg.op_cost +
        static_cast<std::int64_t>(outcome.spawns.size()) * cfg.spawn_cost;
    counters_.busy_ticks += cost;
    executing_ = true;
    // One step runs at a time, so the outcome parks in the processor and the
    // step-completion event captures only {this, uid, life} — inline in
    // EventFn. The incarnation guard keeps a pre-crash step event from
    // meddling with the revived node's parked outcome (it used to merely
    // no-op on a stale uid; now it must not even clear executing_).
    executing_outcome_ = std::move(outcome);
    rt_.sim().after(sim::SimTime(cost), [this, uid, life = incarnation_] {
      if (dead_ || life != incarnation_) return;
      executing_ = false;
      finish_scan(uid, executing_outcome_);
      start_next_step();
    });
    return;
  }
}

void Processor::finish_scan(TaskUid uid, ScanOutcome& outcome) {
  Task* task = find_task(uid);
  if (task == nullptr || task->state() == TaskState::kAborted) return;
  if (outcome.result.has_value()) {
    complete_task(uid, *outcome.result);
    return;
  }
  for (SpawnRequest& request : outcome.spawns) {
    spawn_child(*task, std::move(request));
    if (dead_) return;  // a spawn trigger killed this node mid-loop
  }
  // A result may have landed while this scan executed.
  if (task->dirty()) {
    task->set_dirty(false);
    task->set_state(TaskState::kQueued);
    step_queue_.push_back(uid);
  } else {
    task->set_state(TaskState::kWaiting);
  }
}

// ---------------------------------------------------------------------------
// DEMAND_IT (§4.2)
// ---------------------------------------------------------------------------
//   "Create a task packet. Level-stamp the task packet. Attach parent and
//    grandparent identifications to the task. Queue the task packet to load
//    balancing manager. Functional checkpoint the packet."

void Processor::spawn_child(Task& owner, SpawnRequest request) {
  if (const CallSlot* existing = owner.find_slot(request.site);
      existing != nullptr && existing->spawned && !existing->resolved()) {
    // The slot was pre-linked by a warm rejoin while this scan's outcome
    // was in flight: the original child survives elsewhere and its result
    // is awaited — spawning again would duplicate the whole subtree.
    return;
  }
  TaskPacket packet;
  packet.stamp = owner.stamp().child(request.site);
  packet.fn = request.fn;
  packet.args = std::move(request.args);
  packet.call_site = request.site;
  // Ancestor chain: self as parent, then the owner's own chain, truncated
  // to the configured resilience depth (>= 1).
  packet.ancestors.push_back(TaskRef{id_, owner.uid()});
  const auto depth =
      std::max<std::uint32_t>(1, rt_.config().recovery.ancestor_depth);
  for (const TaskRef& ref : owner.packet().ancestors) {
    if (packet.ancestors.size() >= depth) break;
    packet.ancestors.push_back(ref);
  }
  packet.zone = owner.packet().zone;  // lane confinement is inherited
  owner.note_spawned(request.site, std::move(packet));
  send_packet(owner, owner.slot(request.site));
}

void Processor::send_packet(Task& owner, CallSlot& slot) {
  // Stamp the slot's current spawn generation into the packet: acks echo it
  // (stale-lineage acks are dropped) and a superseded instance can be told
  // apart from its replacement wherever both land.
  slot.retained.lineage = slot.respawns;
  const TaskPacket& packet = slot.retained;
  const std::uint32_t replicas =
      rt_.replication_for(packet.stamp.depth());
  const bool zoned = rt_.config().replication.enabled() &&
                     rt_.config().replication.zoned && replicas > 1;
  sched::Scheduler::DestVec dests;
  if (zoned) {
    // Each replica is placed within its own lane, so destinations must be
    // chosen with the replica's zone annotated.
    for (std::uint32_t r = 0; r < replicas; ++r) {
      TaskPacket probe = packet;
      probe.replica = r;
      probe.zone = static_cast<std::int32_t>(r);
      const net::ProcId dest = rt_.scheduler().choose(id_, probe);
      if (dest != net::kNoProc) dests.push_back(dest);
    }
  } else {
    dests = rt_.scheduler().choose_replicas(id_, packet, replicas);
  }
  if (dests.empty()) return;  // no alive processor: the system is gone
  slot.sent_to = dests;
  slot.child_procs.assign(dests.size(), net::kNoProc);
  slot.child_uids.assign(dests.size(), kNoTask);
  // This spawn is the slot's lineage now; pre-link provenance (used to
  // address cancels at the previous incarnation's child) is spent.
  slot.prelink_prev_owner = kNoTask;
  if (rt_.has_triggers()) {
    rt_.fire_trigger("spawn:" + rt_.program().function(packet.fn).name);
    if (dead_) return;  // trigger killed this node; owner/slot/packet freed
  }
  for (std::uint32_t r = 0; r < dests.size(); ++r) {
    TaskPacket copy = packet;
    copy.replica = r;
    if (zoned) copy.zone = static_cast<std::int32_t>(r);
    Envelope env;
    env.kind = MsgKind::kTaskPacket;
    env.from = id_;
    env.to = dests[r];
    env.size_units = copy.size_units();
    env.payload = std::move(copy);
    rt_.network().send(std::move(env));
  }
  rt_.recorder().record(
      rt_.sim().now(), obs::EventKind::kSpawn,
      {.proc = id_, .peer = dests[0], .stamp = &packet.stamp}, [&] {
        return rt_.program().function(packet.fn).name + " " +
               packet.stamp.to_string() + " -> P" + std::to_string(dests[0]) +
               (dests.size() > 1
                    ? " (+" + std::to_string(dests.size() - 1) + ")"
                    : "");
      });
  // Functional checkpoint (replica 0's destination keys the table entry).
  if (rt_.policy().functional_checkpointing()) {
    if (slot.respawns > 0) {
      // A respawn moves the reissue obligation to the new destination; the
      // record made for the superseded spawn must not linger in the old
      // destination's entry, or a later warm rejoin of that processor
      // would re-host — resurrect — the lineage this respawn replaces.
      table_.release_anywhere(packet.stamp);
    }
    checkpoint::CheckpointRecord record;
    record.owner = owner.uid();
    record.site = slot.site;
    record.packet = packet;
    const auto outcome = table_.record(dests[0], std::move(record));
    rt_.recorder().record(
        rt_.sim().now(), obs::EventKind::kCheckpoint,
        {.proc = id_,
         .peer = dests[0],
         .uid = owner.uid(),
         .stamp = &packet.stamp},
        [&] {
          return packet.stamp.to_string() + " entry P" +
                 std::to_string(dests[0]) +
                 (outcome == checkpoint::RecordOutcome::kSubsumed
                      ? " (subsumed)"
                      : "");
        });
  }
}

// ---------------------------------------------------------------------------
// Completion & result routing
// ---------------------------------------------------------------------------

void Processor::complete_task(TaskUid uid, const lang::Value& value) {
  Task* task = find_task(uid);
  if (task == nullptr) return;
  task->set_state(TaskState::kCompleted);
  ++counters_.tasks_completed;

  ResultMsg msg;
  msg.stamp = task->stamp();
  msg.call_site = task->packet().call_site;
  msg.value = value;
  msg.target = task->packet().parent();
  msg.relation = ResultRelation::kToParent;
  msg.ancestor_index = 0;
  msg.ancestors = task->packet().ancestors;
  msg.replica = task->packet().replica;

  rt_.recorder().record(
      rt_.sim().now(), obs::EventKind::kComplete,
      {.proc = id_,
       .uid = task->uid(),
       .stamp = &task->stamp(),
       .arg = static_cast<std::uint64_t>(
           (rt_.sim().now() - task->created_at()).ticks())},
      [&] {
        return rt_.program().function(task->packet().fn).name + " " +
               task->stamp().to_string() + " = " + value.to_string();
      });
  if (rt_.has_triggers()) {
    rt_.fire_trigger("complete:" +
                     rt_.program().function(task->packet().fn).name);
    if (dead_) return;  // trigger killed this node; `task` is freed
  }

  // The task is fully reduced; free the node's copy before routing the
  // result (matches the paper's reduction of the evaluation structure).
  tasks_.erase(uid);

  if (msg.target.proc == net::kNoProc) {
    rt_.deliver_to_super_root(std::move(msg), id_);
    return;
  }
  if (knows_dead(msg.target.proc)) {
    // "C sends the result to G after failing to communicate with parent P"
    // — when the parent is already known dead, skip the doomed send and let
    // the policy route (splice: to the grandparent; rollback: drop).
    rt_.policy().on_result_undeliverable(*this, std::move(msg));
    return;
  }
  send_result_msg(std::move(msg), msg.target.proc);
}

void Processor::send_result_msg(ResultMsg msg, net::ProcId to) {
  Envelope env;
  env.kind = MsgKind::kForwardResult;
  env.from = id_;
  env.to = to;
  env.size_units = msg.size_units();
  env.payload = std::move(msg);
  rt_.network().send(std::move(env));
}

void Processor::handle_result(ResultMsg msg) {
  if (msg.relation == ResultRelation::kToAncestor) {
    rt_.policy().on_ancestor_result(*this, std::move(msg));
    return;
  }
  Task* task = find_task(msg.target.uid);
  if (task == nullptr && warm_rejoined_ && !msg.stamp.is_root()) {
    // The result addresses a task of this node's previous incarnation; the
    // warm rejoin re-created it under a fresh uid. Level stamps come from
    // program structure (§3.1), so they name the same task across lives —
    // "interpret the level stamp" instead of the stale pointer.
    task = find_task_by_stamp(msg.stamp.parent());
  }
  if (task == nullptr || task->state() == TaskState::kCompleted ||
      task->state() == TaskState::kAborted) {
    if (task == nullptr && buffer_warm_result(std::move(msg))) return;
    // Case 8: "The processor which contained P' may no longer recognize the
    // arrived answer. The result is discarded."
    ++counters_.late_results_discarded;
    return;
  }
  deliver_parent_result(*task, msg);
}

bool Processor::buffer_warm_result(ResultMsg msg) {
  // Only while chunks are still streaming: the consumer may be in flight.
  if (!warm_rejoined_ || awaiting_transfer_.empty()) return false;
  warm_pending_results_.push_back(std::move(msg));
  return true;
}

void Processor::flush_warm_results() {
  if (warm_pending_results_.empty()) return;
  std::vector<ResultMsg> pending = std::move(warm_pending_results_);
  warm_pending_results_.clear();
  // Unmatched results re-buffer themselves while catch-up is active and
  // fall through to the normal discard path after it completes.
  for (ResultMsg& msg : pending) handle_result(std::move(msg));
}

void Processor::deliver_parent_result(Task& task, const ResultMsg& msg) {
  CallSlot& slot = task.slot(msg.call_site);
  if (slot.resolved()) {
    // Cases 6/7: "Since they are identical, the second copy is simply
    // ignored."
    ++counters_.duplicate_results_ignored;
    return;
  }
  const std::uint32_t quorum =
      msg.relayed ? 1U : rt_.quorum_for(msg.stamp.depth());
  const bool newly = task.deliver_result(msg.call_site, msg.value, quorum);
  if (!newly) return;  // vote registered, quorum pending (§5.3)

  if (msg.relayed) {
    ++counters_.orphan_results_salvaged;
    rt_.recorder().record(
        rt_.sim().now(), obs::EventKind::kSalvage,
        {.proc = id_, .uid = task.uid(), .stamp = &msg.stamp}, [&] {
          return msg.stamp.to_string() + " into " + task.stamp().to_string();
        });
  }
  // An unspawned slot can be pre-filled here (twin not yet scanned, or a
  // stamp-matched delivery into a re-hosted task); its default-constructed
  // retained packet names no real function, so no trigger fires for it.
  if (rt_.has_triggers() && slot.spawned) {
    rt_.fire_trigger("result:" +
                     rt_.program().function(slot.retained.fn).name);
    if (dead_) return;  // trigger killed this node; task/slot are freed
  }
  // The slot resolved on a lineage that was recovered at least once (a
  // salvaged orphan return beat the twin, or the twin's own return beat the
  // superseded original): some instance of it may still be computing the
  // very value just delivered. The §4.1 rules would let it run to run end
  // and ignore its result; instead the discard travels as a cancel to
  // every instance the slot still points at (a completed producer is
  // simply no longer there to receive it). A pre-linked slot resolving
  // directly needs nothing: its single awaited original just completed,
  // and its grace respawn would have set twin_active.
  if (rt_.config().reclaim.cancellation && (msg.relayed || slot.twin_active)) {
    cancel_slot_instances(task, slot);  // async sends: nothing dies here
  }
  // The child returned; its functional checkpoint is no longer needed.
  if (rt_.policy().functional_checkpointing()) {
    table_.release_anywhere(msg.stamp);
  }
  slot.retained.args.clear();
  slot.retained.args.shrink_to_fit();
  resume_after_fill(task);
}

void Processor::resume_after_fill(Task& task) {
  switch (task.state()) {
    case TaskState::kWaiting:
      task.set_state(TaskState::kQueued);
      step_queue_.push_back(task.uid());
      start_next_step();
      break;
    case TaskState::kRunning:
      task.set_dirty(true);
      break;
    case TaskState::kQueued:
    case TaskState::kCompleted:
    case TaskState::kAborted:
      break;
  }
}

// ---------------------------------------------------------------------------
// Acks, failures, recovery plumbing
// ---------------------------------------------------------------------------

void Processor::handle_ack(AckMsg msg) {
  // Ack-of-corpse: the child announced itself to a parent instance that no
  // longer exists (cancelled, aborted as an orphan, or lost to a crash the
  // uid outlived). Nothing will ever consume the child's result — reply
  // with a uid-exact cancel so the in-flight spawns of reclaimed lineages
  // are reclaimed too, however late they land. (Replicated depths keep
  // every copy; see cancel_slot_instances.)
  const auto reply_cancel = [&](std::string_view why) {
    if (!rt_.config().reclaim.cancellation || msg.stamp.is_root() ||
        rt_.replication_for(msg.stamp.depth()) > 1 ||
        msg.child.proc == net::kNoProc || knows_dead(msg.child.proc)) {
      return;
    }
    if (msg.parent.uid < incarnation_uid_floor_) {
      // The addressed parent died with a previous incarnation of this
      // node, it was not cancelled: its branch may be regrowing from a
      // restored checkpoint record (respawn_from_record keeps the old
      // parent ref so results still route by stamp), and cancelling the
      // fresh child would nullify the only remaining copy.
      return;
    }
    rt_.recorder().record(
        rt_.sim().now(), obs::EventKind::kAckOfCorpse,
        {.proc = id_, .uid = msg.child.uid, .stamp = &msg.stamp},
        [&] { return msg.stamp.to_string() + " " + std::string(why); });
    send_cancel(msg.stamp, msg.replica, msg.child.uid, msg.parent,
                msg.child.proc);
  };
  Task* task = find_task(msg.parent.uid);
  if (task == nullptr) {
    reply_cancel("parent instance gone");
    return;
  }
  if (!task->note_ack(msg.call_site, msg.child, msg.replica, msg.lineage)) {
    // Stale spawn generation: the instance this ack names was superseded
    // (and cancelled) by a later respawn of the slot. Recording it would
    // point relays — and forwarded cancels — at a corpse; the reply makes
    // sure the superseded instance itself dies even if the respawn-time
    // cancel raced past it in flight.
    reply_cancel("superseded spawn generation");
    return;
  }
  if (rt_.has_triggers()) {
    rt_.fire_trigger("ack:" + rt_.program().function(
                                  task->slot(msg.call_site).retained.fn)
                                  .name);
    if (dead_) return;  // trigger killed this node; `task` is freed
  }
  // Grandparent transport role: flush orphan results buffered for the twin.
  CallSlot& slot = task->slot(msg.call_site);
  if (!slot.pending_relay.empty() && msg.replica == 0) {
    std::vector<ResultMsg> pending = std::move(slot.pending_relay);
    slot.pending_relay.clear();
    for (ResultMsg& orphan : pending) {
      relay_or_buffer(*task, slot, std::move(orphan));
    }
  }
}

void Processor::relay_or_buffer(Task& ancestor, CallSlot& slot,
                                ResultMsg msg) {
  // Target: the slot's current (step-)child, i.e. the twin of the orphan's
  // dead ancestor.
  if (slot.child_procs.empty() || slot.child_procs[0] == net::kNoProc ||
      knows_dead(slot.child_procs[0])) {
    slot.pending_relay.push_back(std::move(msg));
    return;
  }
  const TaskRef twin{slot.child_procs[0], slot.child_uids[0]};
  const std::size_t producer_depth = msg.stamp.depth();
  const std::size_t twin_depth = ancestor.stamp().depth() + 1;
  assert(producer_depth > twin_depth);
  const auto gap = producer_depth - twin_depth;
  msg.target = twin;
  msg.relation =
      gap == 1 ? ResultRelation::kToParent : ResultRelation::kToAncestor;
  msg.ancestor_index = static_cast<std::uint32_t>(gap - 1);
  msg.relayed = true;
  ++counters_.results_relayed;
  rt_.recorder().record(
      rt_.sim().now(), obs::EventKind::kRelay,
      {.proc = id_, .peer = twin.proc, .uid = twin.uid, .stamp = &msg.stamp},
      [&] {
        return msg.stamp.to_string() + " -> twin " + std::to_string(twin.uid) +
               "@P" + std::to_string(twin.proc);
      });
  send_result_msg(std::move(msg), twin.proc);
}

void Processor::handle_delivery_failure(Envelope original) {
  const net::ProcId dead = original.to;
  // The bounce notice trails the failure by the detection timeout; under a
  // rejoin plan the node may have revived (and broadcast its rejoin notice)
  // in between. Marking a live node dead would stick forever — no second
  // rejoin notice will come — so only record the death while it holds.
  // Payload-level recovery below still runs either way: the original
  // message *was* lost, whatever the destination's current state. Across
  // OS processes the bounce came from a real connection failure — the
  // destination was down moments ago; record it (its rejoin notice will
  // clear the verdict if it comes back). An unreachable destination — the
  // far side of an active partition — is §1's "considered faulty" case:
  // detection fires exactly as for a crash. A loss to a destination both
  // alive and reachable (lossy or gray link) triggers no detection at all;
  // only the payload-level recovery below runs.
  if (rt_.network().distributed() || !rt_.network().alive(dead) ||
      !rt_.network().reachable(id_, dead)) {
    learn_dead(dead, /*direct_detection=*/true);
  }
  // Payload loss to a destination both alive and reachable is a wire
  // accident, not a death: the addressee still wants the message, so the
  // right recovery is to send it again. Respawning the child (spawn) or
  // escalating the result to an ancestor (salvage) are *death* recoveries —
  // escalating a result past a live, waiting parent would park it as
  // salvage nobody ever claims.
  const bool wire_loss = !rt_.network().distributed() &&
                         rt_.network().alive(dead) &&
                         rt_.network().reachable(id_, dead);
  switch (original.kind) {
    case MsgKind::kTaskPacket:
      if (wire_loss) {
        retransmit_after_backoff(std::move(original));
      } else {
        rt_.policy().on_spawn_undeliverable(
            *this, std::get<TaskPacket>(original.payload));
      }
      break;
    case MsgKind::kForwardResult:
      if (wire_loss) {
        retransmit_after_backoff(std::move(original));
      } else {
        rt_.policy().on_result_undeliverable(
            *this, std::get<ResultMsg>(std::move(original.payload)));
      }
      break;
    case MsgKind::kStateRequest:
      if (!rt_.network().distributed() && rt_.network().alive(dead)) {
        // Lost on a lossy/gray link, not to a crash: ask again.
        retransmit_after_backoff(std::move(original));
      } else {
        // The peer died before it could stream anything; stop waiting.
        note_transfer_peer_done(dead);
      }
      break;
    case MsgKind::kSpawnAck:
    case MsgKind::kFetchData:
    case MsgKind::kDataReply:
    case MsgKind::kErrorDetection:
    case MsgKind::kCheckpointXfer:
    case MsgKind::kRejoinNotice:
    case MsgKind::kStateChunk:
    case MsgKind::kCancel:
    case MsgKind::kControl:
      // Protocol messages with no payload-level reissue path: nobody
      // regenerates a lost ack, error broadcast, data reply, state chunk,
      // or cancel, so a loss on a lossy/gray link would quietly break
      // liveness (a waiting parent, an unhonoured reissue obligation, a
      // duplicate computing to run end). Retry after a backoff while the
      // destination stays alive — each retry is another independent draw,
      // so delivery is eventually certain; receivers are idempotent (stale
      // broadcasts, chunks, and cancels are guarded at the handler).
      // In-process backends only: across OS processes the bounce means the
      // peer really went down, and a retry would just bounce again.
      if (!rt_.network().distributed() && rt_.network().alive(dead)) {
        retransmit_after_backoff(std::move(original));
      }
      break;
    case MsgKind::kHeartbeat:
    case MsgKind::kLoadUpdate:
      break;  // periodic gossip; the next beat serves the same purpose
    case MsgKind::kDeliveryFailure:
      // A bounce notice that itself bounced: the loss it reported was
      // already handled when the notice was first generated, and the
      // reverse link's health is the detector's problem, not ours.
      break;
  }
}

void Processor::retransmit_after_backoff(Envelope env) {
  const net::ProcId dest = env.to;
  const bool is_cancel = env.kind == MsgKind::kCancel;
  // Register waiting cancels with the runtime so the gc oracle knows the
  // lineage's reclaim is delayed in this pipeline, not leaked.
  LevelStamp cancel_stamp;
  if (is_cancel) {
    cancel_stamp = std::get<CancelMsg>(env.payload).stamp;
    note_cancel_backoff(cancel_stamp, +1);
  }
  const sim::SimTime backoff =
      sim::SimTime(2 * rt_.network().latency_model().failure_timeout);
  rt_.sim().after(
      backoff, [this, env = std::move(env), dest, is_cancel, cancel_stamp,
                life = incarnation_]() mutable {
        if (is_cancel) note_cancel_backoff(cancel_stamp, -1);
        if (dead_ || life != incarnation_ || rt_.done()) return;
        if (!rt_.network().alive(dest)) return;  // addressee died meanwhile
        if (is_cancel) {
          ++counters_.cancel_retries;
        } else {
          ++counters_.bounce_retransmits;
        }
        rt_.network().send(std::move(env));
      });
}

void Processor::note_cancel_backoff(const LevelStamp& stamp, int delta) {
  if (delta > 0) {
    cancels_in_backoff_[stamp] += static_cast<std::uint32_t>(delta);
    return;
  }
  const auto it = cancels_in_backoff_.find(stamp);
  if (it == cancels_in_backoff_.end()) return;
  const auto dec = static_cast<std::uint32_t>(-delta);
  if (it->second <= dec) {
    cancels_in_backoff_.erase(it);
  } else {
    it->second -= dec;
  }
}

void Processor::learn_dead(net::ProcId dead, bool direct_detection) {
  if (dead == id_ || known_dead_.contains(dead)) return;
  known_dead_.insert(dead);
  // A catch-up peer that died mid-stream will never send its last chunk.
  note_transfer_peer_done(dead);
  rt_.recorder().record(
      rt_.sim().now(), obs::EventKind::kDetect,
      {.proc = id_, .peer = dead, .arg = direct_detection ? 1u : 0u}, [&] {
        // Incremental concatenation dodges a gcc 12 -Wrestrict false
        // positive.
        std::string detail = "P";
        detail += std::to_string(dead);
        detail += direct_detection ? " (direct)" : " (broadcast)";
        return detail;
      });
  rt_.note_detection(dead, id_);
  if (direct_detection) {
    // First-hand detector: broadcast error-detection so every processor can
    // honour its reissue obligations.
    ++counters_.error_broadcasts;
    for (net::ProcId p = 0; p < rt_.network().size(); ++p) {
      if (p == id_ || p == dead || !rt_.network().alive(p)) continue;
      Envelope env;
      env.kind = MsgKind::kErrorDetection;
      env.from = id_;
      env.to = p;
      env.size_units = 1;
      env.payload = ErrorMsg{dead, id_};
      rt_.network().send(std::move(env));
    }
  }
  rt_.policy().on_error_detected(*this, dead);
}

void Processor::respawn_slot(Task& owner, CallSlot& slot, bool as_twin,
                             std::string_view reason) {
  if (slot.resolved() || !slot.spawned) return;
  // The instances the slot pointed at so far are superseded by the twin
  // about to spawn; any that survive on a live processor (undetected
  // rejoin, pre-link grace expiry, warm re-host vs. survivor fallback)
  // would compute a duplicate lineage. Discard travels as a message:
  // cancels go out *before* the replacement packets, so on a shared
  // destination the cancel is delivered first and can never hit the twin.
  if (rt_.config().reclaim.cancellation) cancel_slot_instances(owner, slot);
  ++slot.respawns;
  ++counters_.tasks_respawned;
  if (as_twin) {
    slot.twin_active = true;
    ++counters_.twins_created;
  }
  rt_.recorder().record(
      rt_.sim().now(),
      as_twin ? obs::EventKind::kTwin : obs::EventKind::kReissue,
      {.proc = id_, .stamp = &slot.retained.stamp}, [&] {
        return rt_.program().function(slot.retained.fn).name + " " +
               slot.retained.stamp.to_string() + " (" + std::string(reason) +
               ")";
      });
  send_packet(owner, slot);
}

// ---------------------------------------------------------------------------
// Cancellation protocol (kCancel)
// ---------------------------------------------------------------------------
// The recovery scheme never assumes global knowledge: every corrective
// action — reissue, splice, discard — travels as a message. Reclamation of
// duplicate lineages is the discard case. A cancel names its victim by
// (stamp, replica), the identity that survives crashes (§3.1), plus the
// exact uid when the issuer holds an acknowledged pointer; the receiver
// aborts the addressed task, releases the checkpoints it retained for its
// own children, and forwards cancels down every outstanding call slot, so
// the duplicate subtree converges hop by hop instead of level by level
// under an omniscient sweep.

void Processor::send_cancel(const LevelStamp& stamp, std::uint32_t replica,
                            TaskUid uid, TaskRef parent, net::ProcId to) {
  ++counters_.cancels_sent;
  rt_.recorder().record(
      rt_.sim().now(), obs::EventKind::kCancel,
      {.proc = id_, .peer = to, .uid = uid, .stamp = &stamp}, [&] {
        return stamp.to_string() +
               (uid != kNoTask
                    ? " uid=" + std::to_string(uid)
                    : " (of parent uid=" + std::to_string(parent.uid) + ")") +
               " -> P" + std::to_string(to);
      });
  CancelMsg msg;
  msg.stamp = stamp;
  msg.replica = replica;
  msg.uid = uid;
  msg.parent = parent;
  msg.issued_at = rt_.sim().now();
  Envelope env;
  env.kind = MsgKind::kCancel;
  env.from = id_;
  env.to = to;
  env.size_units = msg.size_units();
  env.payload = msg;
  rt_.network().send(std::move(env));
}

void Processor::cancel_slot_instances(const Task& owner, const CallSlot& slot) {
  if (!rt_.config().reclaim.cancellation) return;
  const LevelStamp& stamp = slot.retained.stamp;
  // Roots belong to the super-root; replicated depths keep every copy by
  // design (§5.3 — the redundancy IS the copies).
  if (stamp.is_root() || rt_.replication_for(stamp.depth()) > 1) return;
  // Stamp-addressed cancels revoke a specific parent instance's spawn: for
  // a pre-linked slot the awaited original carries the *previous
  // incarnation's* owner uid; every other never-acked instance carries the
  // current owner's.
  const TaskRef spawner{id_, slot.prelink_prev_owner != kNoTask
                                 ? slot.prelink_prev_owner
                                 : owner.uid()};
  for (std::size_t r = 0; r < slot.sent_to.size(); ++r) {
    const bool acked = r < slot.child_procs.size() &&
                       slot.child_procs[r] != net::kNoProc &&
                       slot.child_uids[r] != kNoTask;
    const net::ProcId where = acked ? slot.child_procs[r] : slot.sent_to[r];
    if (where == net::kNoProc || where >= rt_.network().size() ||
        (knows_dead(where) && !rt_.network().alive(where))) {
      // Really dead: nothing lives there to reclaim. A destination this
      // node merely *believes* dead may have rejoined undetected (repair,
      // healed partition) with the instance still resident — the cancel
      // must go out or that copy leaks; to a truly dead node it only
      // bounces.
      continue;
    }
    send_cancel(stamp, static_cast<std::uint32_t>(r),
                acked ? slot.child_uids[r] : kNoTask, spawner, where);
  }
}

void Processor::handle_cancel(CancelMsg msg) {
  if (!rt_.config().reclaim.cancellation || msg.stamp.is_root()) return;
  Task* task = nullptr;
  if (msg.uid != kNoTask) {
    task = find_task(msg.uid);
    // Uids are never reused, but a stamp mismatch would mean a protocol
    // bug upstream — refuse to abort anything the cancel does not name.
    if (task != nullptr && task->stamp() != msg.stamp) task = nullptr;
  } else {
    task = find_task_by_stamp_replica(msg.stamp, msg.replica, msg.parent,
                                      msg.issued_at);
  }
  if (task == nullptr || task->state() == TaskState::kCompleted ||
      task->state() == TaskState::kAborted) {
    // Already completed, already reclaimed, or a fresh lineage the
    // incarnation fence protects — either way the cancel found no work.
    ++counters_.cancels_ignored;
    return;
  }
  cancel_task(task->uid(), "cancelled: duplicate lineage");
}

void Processor::cancel_task(TaskUid uid, std::string_view reason) {
  Task* task = find_task(uid);
  if (task == nullptr || task->state() == TaskState::kCompleted ||
      task->state() == TaskState::kAborted) {
    return;
  }
  ++counters_.tasks_cancelled;
  counters_.reclaim_latency_ticks +=
      (rt_.sim().now() - task->created_at()).ticks();
  // Release the checkpoints this lineage retained and propagate the cancel
  // down every outstanding slot before the local abort frees them.
  for (const CallSlot& slot : task->slots()) {
    if (!slot.spawned || slot.resolved()) continue;
    if (rt_.policy().functional_checkpointing()) {
      table_.release_anywhere(slot.retained.stamp);
    }
    cancel_slot_instances(*task, slot);
  }
  abort_task(uid, reason);
}

void Processor::abort_task(TaskUid uid, std::string_view reason) {
  Task* task = find_task(uid);
  if (task == nullptr) return;
  if (task->state() == TaskState::kCompleted ||
      task->state() == TaskState::kAborted) {
    return;
  }
  task->set_state(TaskState::kAborted);
  ++counters_.tasks_aborted;
  rt_.recorder().record(
      rt_.sim().now(), obs::EventKind::kAbort,
      {.proc = id_, .uid = uid, .stamp = &task->stamp()}, [&] {
        return task->stamp().to_string() + " (" + std::string(reason) + ")";
      });
  tasks_.erase(uid);
}

Task* Processor::find_task(TaskUid uid) {
  auto it = tasks_.find(uid);
  return it == tasks_.end() ? nullptr : it->second.get();
}

bool Processor::has_stake_in(net::ProcId dead) const {
  if (!table_.entry(dead).empty()) return true;
  for (const auto& [uid, task] : tasks_) {
    if (task->state() == TaskState::kCompleted ||
        task->state() == TaskState::kAborted) {
      continue;
    }
    if (task->packet().parent().proc == dead) return true;
    for (const CallSlot& slot : task->slots()) {
      if (!slot.outstanding()) continue;
      for (net::ProcId p : slot.sent_to) {
        if (p == dead) return true;
      }
      // A child may have been accepted by a node the scheduler did not
      // originally pick (respawn landed elsewhere); the ack knows.
      for (net::ProcId p : slot.child_procs) {
        if (p == dead) return true;
      }
    }
  }
  return false;
}

Task* Processor::find_task_by_stamp_replica(const LevelStamp& stamp,
                                            std::uint32_t replica,
                                            TaskRef parent,
                                            sim::SimTime before) {
  Task* best = nullptr;
  for (auto& [uid, task] : tasks_) {
    if (task->state() == TaskState::kCompleted ||
        task->state() == TaskState::kAborted || task->stamp() != stamp ||
        task->packet().replica != replica ||
        !(task->packet().parent() == parent) ||
        !(task->created_at() < before)) {
      continue;
    }
    if (best == nullptr || task->uid() < best->uid()) best = task.get();
  }
  return best;
}

Task* Processor::find_task_by_stamp(const LevelStamp& stamp) {
  // Lowest uid wins so the choice is deterministic regardless of hash-map
  // iteration order (replicas can share a stamp on one node).
  Task* best = nullptr;
  for (auto& [uid, task] : tasks_) {
    if (task->state() == TaskState::kCompleted ||
        task->state() == TaskState::kAborted || task->stamp() != stamp) {
      continue;
    }
    if (best == nullptr || task->uid() < best->uid()) best = task.get();
  }
  return best;
}

void Processor::respawn_from_record(checkpoint::CheckpointRecord record,
                                    std::string_view reason) {
  TaskPacket packet = record.packet;
  packet.replica = 0;
  // A restored-record reissue supersedes whatever instance the record's
  // previous spawn produced; bump the generation so (a) the replacement's
  // acceptance triggers local duplicate reclaim and (b) a straggling ack
  // from the old instance cannot outrank the new one.
  ++packet.lineage;
  record.packet.lineage = packet.lineage;
  const net::ProcId dest = rt_.scheduler().choose(id_, packet);
  if (dest == net::kNoProc) return;
  ++counters_.tasks_respawned;
  rt_.recorder().record(rt_.sim().now(), obs::EventKind::kReissue,
                        {.proc = id_, .stamp = &packet.stamp}, [&] {
                          return packet.stamp.to_string() +
                                 " from restored record (" +
                                 std::string(reason) + ")";
                        });
  Envelope env;
  env.kind = MsgKind::kTaskPacket;
  env.from = id_;
  env.to = dest;
  env.size_units = packet.size_units();
  env.payload = packet;
  rt_.network().send(std::move(env));
  if (rt_.policy().functional_checkpointing()) {
    table_.record(dest, std::move(record));
  }
}

// ---------------------------------------------------------------------------
// Crash / freeze / snapshot
// ---------------------------------------------------------------------------

void Processor::nuke() {
  dead_ = true;
  // Everything resident is live work (completed/aborted tasks are erased
  // eagerly); it dies with the node. Counted so the RecoveryOracle can
  // balance the task-conservation equation — counters_ itself survives the
  // crash, it describes the run, not the incarnation.
  counters_.tasks_lost_to_crash += tasks_.size();
  tasks_.clear();
  step_queue_.clear();
  executing_ = false;
  warm_rejoined_ = false;
  awaiting_transfer_.clear();
  streamer_.cancel_all();     // abandon any catch-up streams this node fed
  store_.on_crash(incarnation_);  // the persistency model decides survival
  ++incarnation_;  // orphan this life's pending heartbeat chain
  store_.set_incarnation(incarnation_);
}

void Processor::revive() {
  if (!dead_) return;
  dead_ = false;
  frozen_ = false;
  executing_ = false;
  incarnation_uid_floor_ = rt_.current_uid(id_);
  // Whatever the rejoin mode, the node has no memory of which peers failed
  // while it was down; warm catch-up re-learns that from survivors.
  known_dead_.clear();
  const bool warm = rt_.warm_rejoin();
  std::size_t restored = 0;
  table_.set_listener(nullptr);  // replay must not re-log itself
  table_.clear();
  if (warm) {
    // Replay skips checkpoints held against this node itself — they guard
    // children that died in the same crash, so the re-accepted parents
    // respawn those subtrees fresh.
    restored = store_.replay_into(table_);
    store_.compact_from(table_);
    warm_rejoined_ = true;
    revive_time_ = rt_.sim().now();
  } else {
    store_.clear();  // cold: the new life starts from an empty log
  }
  if (store_.enabled()) table_.set_listener(&store_);
  ++counters_.rejoins;
  rt_.recorder().record(
      rt_.sim().now(), obs::EventKind::kRejoin,
      {.proc = id_, .arg = warm ? static_cast<std::uint64_t>(restored) : 0},
      [&] {
        return warm ? "repaired, warm (" + std::to_string(restored) +
                          " checkpoints restored)"
                    : std::string("repaired, blank");
      });
  // Announce the rejoin so live peers drop this node from their dead sets
  // (dead peers either stay silent forever or rejoin themselves).
  for (net::ProcId p = 0; p < rt_.network().size(); ++p) {
    if (p == id_ || !rt_.network().alive(p)) continue;
    Envelope env;
    env.kind = MsgKind::kRejoinNotice;
    env.from = id_;
    env.to = p;
    env.size_units = 1;
    env.payload = RejoinMsg{id_};
    rt_.network().send(std::move(env));
  }
  if (warm) {
    // Survivor-assisted catch-up: ask every live peer for the checkpoints
    // it holds against this node (the tasks this node should re-host) and
    // its liveness view. Chunks stream back interleaved with normal
    // traffic; the incarnation guards against a re-crash mid-transfer.
    for (net::ProcId p = 0; p < rt_.network().size(); ++p) {
      if (p == id_ || !rt_.network().alive(p)) continue;
      awaiting_transfer_.insert(p);
      Envelope env;
      env.kind = MsgKind::kStateRequest;
      env.from = id_;
      env.to = p;
      env.size_units = 1;
      env.payload = store::StateRequestMsg{id_, incarnation_};
      rt_.network().send(std::move(env));
    }
    // Nobody left to stream from: catch-up is trivially complete (the
    // pre-link sweep and result flushing must still be armed).
    if (awaiting_transfer_.empty()) {
      complete_catch_up();
    } else {
      // Liveness guard on the stream itself: a final chunk lost to a lossy
      // or gray link would hold catch-up open forever (the peer is alive,
      // so no death notification ever closes it). After the warm grace —
      // the same horizon at which survivors give up deferring and reissue
      // cold — stop waiting; the pre-link sweep respawns whatever a
      // missing chunk should have carried.
      rt_.sim().after(sim::SimTime(rt_.config().store.warm_grace),
                      [this, life = incarnation_] {
                        if (life != incarnation_ || dead_ || rt_.done() ||
                            awaiting_transfer_.empty()) {
                          return;
                        }
                        awaiting_transfer_.clear();
                        complete_catch_up();
                      });
    }
  }
  start_heartbeats();
}

// ---------------------------------------------------------------------------
// Warm-rejoin state transfer (store/ subsystem)
// ---------------------------------------------------------------------------

void Processor::handle_state_request(store::StateRequestMsg msg) {
  // The request races the rejoin notice only in pathological orders; treat
  // it as proof of life either way.
  if (knows_dead(msg.who)) learn_alive(msg.who);
  streamer_.start(msg.who, msg.incarnation);
}

void Processor::handle_state_chunk(net::ProcId from,
                                   store::StateChunkMsg msg) {
  if (!warm_rejoined_ || msg.incarnation != incarnation_) {
    // Addressed to a previous life: this node re-crashed mid-transfer and
    // the chunk outlived it. The peer's table still holds every record, so
    // the next revive re-requests from scratch.
    ++counters_.stale_chunks_dropped;
    return;
  }
  counters_.state_units_transferred += msg.size_units();
  for (net::ProcId p : msg.known_dead) {
    // Survivor liveness view: adopt deaths the network still agrees on.
    if (p == id_ || rt_.network().alive(p)) continue;
    learn_dead(p, /*direct_detection=*/false);
  }
  for (TaskPacket& packet : msg.packets) {
    accept_transferred_packet(std::move(packet));
  }
  flush_warm_results();  // consumers for parked results may just have landed
  if (msg.last) note_transfer_peer_done(from);
}

void Processor::accept_transferred_packet(TaskPacket packet) {
  if (find_task_by_stamp(packet.stamp) != nullptr) return;  // already hosted
  ++counters_.state_packets_transferred;
  ++counters_.reissues_avoided;  // the peer would have respawned this task
  const LevelStamp stamp = packet.stamp;
  rt_.recorder().record(rt_.sim().now(), obs::EventKind::kTransferIn,
                        {.proc = id_, .stamp = &stamp},
                        [&] { return stamp.to_string() + " re-hosted"; });
  const TaskUid uid = accept_packet(std::move(packet));
  Task* task = find_task(uid);
  if (task == nullptr) return;
  // Rebind replay-restored child checkpoints to the re-accepted owner and —
  // when the policy salvages orphans — pre-link its slots: subtrees that
  // survive on peers are awaited (their results route back by stamp), not
  // recomputed. Without salvage an orphan's result can be abandoned in
  // flight, so a non-salvaging policy respawns instead of awaiting.
  const bool prelink = rt_.policy().salvages_orphans();
  for (auto& [dest, record] : table_.restored_children_of(stamp)) {
    const TaskUid prev_owner = record->owner;
    record->owner = uid;
    if (!record->packet.ancestors.empty()) {
      record->packet.ancestors[0] = TaskRef{id_, uid};
    }
    if (!prelink) continue;
    task->note_spawned(record->site, record->packet);
    CallSlot& slot = task->slot(record->site);
    slot.sent_to = {dest};
    slot.prelinked = true;
    // The awaited original out there still carries the previous
    // incarnation's owner uid as its parent ref; a cancel for it (pre-link
    // grace expiry) must name that instance, not the re-hosted owner.
    slot.prelink_prev_owner = prev_owner;
    rt_.recorder().record(
        rt_.sim().now(), obs::EventKind::kPreLink,
        {.proc = id_, .peer = dest, .stamp = &record->packet.stamp}, [&] {
          return record->packet.stamp.to_string() + " awaiting P" +
                 std::to_string(dest);
        });
  }
}

void Processor::note_transfer_peer_done(net::ProcId peer) {
  if (awaiting_transfer_.erase(peer) == 0 || !awaiting_transfer_.empty()) {
    return;
  }
  complete_catch_up();
}

void Processor::complete_catch_up() {
  counters_.catch_up_ticks += (rt_.sim().now() - revive_time_).ticks();
  rt_.recorder().record(
      rt_.sim().now(), obs::EventKind::kCatchUp,
      {.proc = id_,
       .arg = static_cast<std::uint64_t>(
           (rt_.sim().now() - revive_time_).ticks())},
      [&] {
        return "state transfer complete after " +
               std::to_string((rt_.sim().now() - revive_time_).ticks()) +
               " ticks";
      });
  flush_warm_results();  // stragglers now resolve or discard normally
  // Liveness guard on the awaited orphans: a pre-linked result can be lost
  // to a later fault (ancestor chain exhausted, host re-crash) or be a
  // stale obligation whose release the persistency model dropped. After
  // the pre-link grace, stop waiting and respawn whatever is unresolved —
  // duplicate returns are ignored by the §4.1 rules, so this trades a
  // little repeat work for guaranteed progress.
  rt_.sim().after(sim::SimTime(rt_.config().store.prelink_grace),
                  [this, life = incarnation_] {
                    if (life != incarnation_ || dead_ || rt_.done()) return;
                    for_each_task([&](Task& task) {
                      for (CallSlot& slot : task.slots_mut()) {
                        if (!slot.prelinked || slot.resolved()) continue;
                        slot.prelinked = false;
                        respawn_slot(task, slot, /*as_twin=*/true,
                                     "pre-link grace expired");
                      }
                    });
                    // Catch-up is over and every awaited slot has either
                    // resolved or respawned: results for the previous
                    // incarnation are no longer expected, so stop paying
                    // the stamp-scan fallback on every unmatched result.
                    warm_rejoined_ = false;
                  });
}

void Processor::learn_alive(net::ProcId back) {
  if (back == id_) return;
  // A peer this node is awaiting catch-up chunks from crashed mid-stream
  // (its pump died with it) and has now been repaired: re-request. The
  // repaired peer streams whatever its own store preserved — possibly just
  // an empty final chunk — so the catch-up bookkeeping always completes.
  if (awaiting_transfer_.contains(back)) {
    Envelope env;
    env.kind = MsgKind::kStateRequest;
    env.from = id_;
    env.to = back;
    env.size_units = 1;
    env.payload = store::StateRequestMsg{id_, incarnation_};
    rt_.network().send(std::move(env));
  }
  // Incremental concatenation in the thunks dodges a gcc 12 -Wrestrict
  // false positive (same workaround as learn_dead).
  if (known_dead_.erase(back) > 0) {
    rt_.recorder().record(rt_.sim().now(), obs::EventKind::kPeerRejoin,
                          {.proc = id_, .peer = back}, [&] {
                            std::string detail = "P";
                            detail += std::to_string(back);
                            detail += " is back";
                            return detail;
                          });
    return;
  }
  // We never saw this node die: the repair beat our detection timeout. Its
  // volatile state — including any of our children it hosted — is gone all
  // the same, so honour the reissue obligations a death notification would
  // have triggered. (No-op when we hold no checkpoints toward it.)
  rt_.recorder().record(rt_.sim().now(), obs::EventKind::kPeerRejoin,
                        {.proc = id_, .peer = back}, [&] {
                          std::string detail = "P";
                          detail += std::to_string(back);
                          detail += " rejoined undetected";
                          return detail;
                        });
  rt_.policy().on_error_detected(*this, back);
}

void Processor::freeze() { frozen_ = true; }

void Processor::unfreeze() {
  frozen_ = false;
  start_next_step();
}

std::vector<Task> Processor::snapshot_tasks() const {
  std::vector<Task> out;
  out.reserve(tasks_.size());
  for (const auto& [uid, task] : tasks_) {
    Task copy = *task;
    // An in-flight step is not part of durable state; the restored task
    // rescans from its slots.
    if (copy.state() == TaskState::kRunning) copy.set_state(TaskState::kQueued);
    copy.set_dirty(false);
    out.push_back(std::move(copy));
  }
  return out;
}

void Processor::restore_tasks(std::vector<Task> tasks) {
  if (dead_) return;
  tasks_.clear();
  step_queue_.clear();
  for (Task& task : tasks) {
    const TaskUid uid = task.uid();
    task.set_state(TaskState::kQueued);
    tasks_.emplace(uid, task_pool_.make(std::move(task)));
    step_queue_.push_back(uid);
  }
  start_next_step();
}

void Processor::adopt_tasks(std::vector<Task> tasks) {
  if (dead_) return;
  for (Task& task : tasks) {
    const TaskUid uid = task.uid();
    task.set_state(TaskState::kQueued);
    tasks_.emplace(uid, task_pool_.make(std::move(task)));
    step_queue_.push_back(uid);
  }
  start_next_step();
}

std::uint64_t Processor::state_units() const {
  std::uint64_t units = 0;
  for (const auto& [uid, task] : tasks_) units += task->state_units();
  return units;
}

// ---------------------------------------------------------------------------
// Heartbeats
// ---------------------------------------------------------------------------

void Processor::start_heartbeats() {
  const std::int64_t interval = rt_.config().heartbeat_interval;
  if (interval <= 0) return;
  // Stagger initial probes so the fleet does not heartbeat in lockstep.
  const std::int64_t offset =
      static_cast<std::int64_t>(id_) * (interval / (rt_.network().size() + 1));
  rt_.sim().after(sim::SimTime(interval + offset),
                  [this, life = incarnation_] {
                    if (life == incarnation_) do_heartbeat();
                  });
}

void Processor::do_heartbeat() {
  if (dead_ || rt_.done()) return;
  ++heartbeat_seq_;
  for (net::ProcId q : rt_.network().topology().neighbors(id_)) {
    if (knows_dead(q)) continue;
    Envelope env;
    env.kind = MsgKind::kHeartbeat;
    env.from = id_;
    env.to = q;
    env.size_units = 1;
    env.payload = HeartbeatMsg{heartbeat_seq_};
    rt_.network().send(std::move(env));
  }
  rt_.sim().after(sim::SimTime(rt_.config().heartbeat_interval),
                  [this, life = incarnation_] {
                    if (life == incarnation_) do_heartbeat();
                  });
}

}  // namespace splice::runtime
