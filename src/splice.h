// Umbrella header: the full public API of the splice library.
//
//   #include "splice.h"
//
// pulls in everything a downstream user needs:
//   * core::SystemConfig / core::Simulation / core::RunResult — configure,
//     run, measure (core/simulation.h);
//   * lang::programs — the workload library; lang::FunctionBuilder — build
//     your own applicative programs (lang/programs.h);
//   * net::FaultPlan — schedule crashes, regions, cascades, Poisson fault
//     rates, and rejoin (net/fault_plan.h, executed by net/fault_injector.h);
//   * store::Persistency / core::StoreConfig — the durable checkpoint log
//     and warm-rejoin state transfer (store/durable_store.h,
//     store/state_transfer.h);
//   * the lower layers (runtime, sched, checkpoint, store, recovery) for
//     embedders who extend the machine itself.
#pragma once

#include "checkpoint/checkpoint_table.h"
#include "checkpoint/super_root.h"
#include "core/config.h"
#include "core/metrics.h"
#include "core/simulation.h"
#include "core/trace.h"
#include "lang/interpreter.h"
#include "lang/program.h"
#include "lang/programs.h"
#include "net/codec.h"
#include "net/fault_injector.h"
#include "net/fault_plan.h"
#include "net/network.h"
#include "net/tcp_transport.h"
#include "net/topology.h"
#include "net/transport.h"
#include "recovery/policy.h"
#include "recovery/replicated.h"
#include "runtime/runtime.h"
#include "sched/gradient.h"
#include "sched/scheduler.h"
#include "sim/simulator.h"
#include "store/durable_store.h"
#include "store/persistency.h"
#include "store/state_transfer.h"
#include "util/stats.h"
#include "util/table.h"
